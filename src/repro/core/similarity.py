"""Similarity measures and ranking scores (Section VI-A, Equations 1–5).

Premise similarity weights the common '1's of a pattern's premise key and
the query's premise key by how close their regions are to the consequence:
"the '1' with a higher position in the premise key is more important than
the '1' with a lower position" (Property 1).  Position ``i`` is the
right-to-left rank of a '1' *within the pattern's premise key* ``rk``, and
its weight comes from one of four normalised families:

* linear       ``w_i = i / Σ i``
* quadratic    ``w_i = i² / Σ i²``
* exponential  ``w_i = 2^i / Σ 2^i``
* factorial    ``w_i = i! / Σ i!``

The paper reports the linear and quadratic families predict best.

Worked examples from the paper (covered by tests):
``S_r(00011, 00011) = 1``; ``S_r(00011, 00010) = 2/3``;
``S_p(1000011, 1000011) = 1 x 0.5 = 0.5``;
``S_p(1000101, 1000011) = 0.33 x 0.4 = 0.132``.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Callable

from ..signature import bitset
from .keys import PatternKey

__all__ = [
    "WEIGHT_FUNCTIONS",
    "PremiseScorer",
    "premise_weights",
    "premise_similarity",
    "consequence_similarity",
    "fqp_score",
    "bqp_score",
    "query_similarity",
]


WEIGHT_FUNCTIONS: dict[str, Callable[[int], float]] = {
    "linear": float,
    "quadratic": lambda i: float(i * i),
    "exponential": lambda i: float(2**i),
    "factorial": lambda i: float(math.factorial(i)),
}


def premise_weights(num_ones: int, kind: str = "linear") -> list[float]:
    """Normalised weights ``w_1 .. w_n`` for a premise key with ``n`` ones.

    ``w_i`` is the importance of the i-th '1' counted right-to-left; the
    weights sum to 1, so a full match yields similarity 1.
    """
    if kind not in WEIGHT_FUNCTIONS:
        raise ValueError(
            f"unknown weight function {kind!r}; choose from "
            f"{sorted(WEIGHT_FUNCTIONS)}"
        )
    if num_ones < 0:
        raise ValueError(f"num_ones must be >= 0, got {num_ones}")
    if num_ones == 0:
        return []
    return list(_cached_weights(num_ones, kind))


@lru_cache(maxsize=4096)
def _cached_weights(num_ones: int, kind: str) -> tuple[float, ...]:
    # The weight vector depends only on (n, kind); the ranking hot path
    # asks for the same few vectors millions of times.
    raw = WEIGHT_FUNCTIONS[kind]
    values = [raw(i) for i in range(1, num_ones + 1)]
    total = sum(values)
    return tuple(v / total for v in values)


def premise_similarity(rk: int, rkq: int, kind: str = "linear") -> float:
    """Equation 1: weighted overlap of pattern premise ``rk`` with query ``rkq``.

    Sums the weights of the '1's of ``rk`` that also appear in ``rkq``; the
    position/weight of each '1' is its rank within ``rk`` itself, so a
    pattern whose *recent-side* premise regions match the query scores
    higher than one matching only early regions.
    """
    if rk < 0 or rkq < 0:
        raise ValueError("premise keys are non-negative")
    n = bitset.size(rk)
    if n == 0:
        return 0.0
    weights = premise_weights(n, kind)
    common = rk & rkq
    score = 0.0
    for bit_index in bitset.iter_set_bits(common):
        rank = bitset.position_of_bit(rk, bit_index)  # 1-based, right-to-left
        score += weights[rank - 1]
    return score


def consequence_similarity(offset_distance: int, relaxation: int) -> float:
    """Equation 3: ``S_c = 1 - |tq - t| / (t_eps + 1)``.

    ``offset_distance`` is ``|tq - t|`` between the query time and the
    candidate consequence's time; ``relaxation`` is the *effective*
    relaxation half-width of the interval the candidate was drawn from
    (``i x t_eps`` after ``i`` BQP enlargements — using the enlarged width
    keeps ``S_c`` in [0, 1], see DESIGN.md).
    """
    if offset_distance < 0:
        raise ValueError(f"offset_distance must be >= 0, got {offset_distance}")
    if relaxation < 0:
        raise ValueError(f"relaxation must be >= 0, got {relaxation}")
    value = 1.0 - offset_distance / (relaxation + 1)
    return max(0.0, value)


def fqp_score(premise_sim: float, confidence: float) -> float:
    """Equation 2: ``S_p = S_r x c`` — compound probability of independent evidence."""
    _check_unit("premise_sim", premise_sim)
    _check_unit("confidence", confidence)
    return premise_sim * confidence


def bqp_score(
    premise_sim: float,
    consequence_sim: float,
    confidence: float,
    distant_threshold: int,
    horizon: int,
) -> float:
    """Equation 5: ``S_p = (S_r x d/(tq - tc) + S_c) x c``.

    ``horizon = tq - tc`` is the prediction length; the ``d / horizon``
    factor (<= 1 for distant queries) penalises the premise evidence as the
    query moves further from the current time.
    """
    _check_unit("premise_sim", premise_sim)
    _check_unit("consequence_sim", consequence_sim)
    _check_unit("confidence", confidence)
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if distant_threshold <= 0:
        raise ValueError(
            f"distant_threshold must be positive, got {distant_threshold}"
        )
    penalty = min(1.0, distant_threshold / horizon)
    return (premise_sim * penalty + consequence_sim) * confidence


class PremiseScorer:
    """Equation 1 with per-premise-key weight tables computed once.

    Ranking scores every candidate pattern against one query key; a
    pattern's per-'1' weights depend only on its own premise key and the
    weight family, so they are resolved to ``(bit, weight)`` pairs the
    first time a key is seen and reused for every later query.

    ``score`` sums the weights of the common '1's in ascending bit order —
    the same accumulation order, and therefore bit-for-bit the same float,
    as :func:`premise_similarity`.
    """

    __slots__ = ("kind", "_tables")

    def __init__(self, kind: str = "linear"):
        if kind not in WEIGHT_FUNCTIONS:
            raise ValueError(
                f"unknown weight function {kind!r}; choose from "
                f"{sorted(WEIGHT_FUNCTIONS)}"
            )
        self.kind = kind
        self._tables: dict[int, tuple[tuple[int, float], ...]] = {}

    def table(self, rk: int) -> tuple[tuple[int, float], ...]:
        """``(bit_index, weight)`` pairs of ``rk``'s '1's, ascending."""
        table = self._tables.get(rk)
        if table is None:
            if rk < 0:
                raise ValueError("premise keys are non-negative")
            bits = bitset.to_indices(rk)
            table = self._tables[rk] = tuple(
                zip(bits, _cached_weights(len(bits), self.kind))
            )
        return table

    def score(self, rk: int, rkq: int) -> float:
        """Equation 1: ``premise_similarity(rk, rkq, self.kind)``, cached."""
        if rkq < 0:
            raise ValueError("premise keys are non-negative")
        common = rk & rkq
        score = 0.0
        if common:
            for bit_index, weight in self.table(rk):
                if (common >> bit_index) & 1:
                    score += weight
        elif rk < 0:
            raise ValueError("premise keys are non-negative")
        return score


def query_similarity(pattern_key: PatternKey, query_key: PatternKey, kind: str) -> float:
    """Premise similarity between two full pattern keys (convenience)."""
    return premise_similarity(pattern_key.premise_key, query_key.premise_key, kind)


def _check_unit(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
