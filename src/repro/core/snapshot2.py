"""Fleet snapshot format v2: packed columnar blocks with an offset index.

Format v1 (:mod:`repro.core.persistence`) writes one compressed ``.npz``
per object and reconstructs regions and patterns through per-row Python
loops — fine for archival, but the shard-restart recovery loop and
``PredictionService.from_snapshot`` pay seconds of avoidable decompression
and loop work before the first prediction.  Format v2 packs the **whole
fleet** into a small fixed set of flat ``.npy`` blocks plus a JSON
manifest carrying a per-object ``[start, end)`` index into every block:

``manifest.json``
    ``format_version`` 2, the fleet config, the weight-family the stored
    kernels were packed for, the global pattern-table premise width, the
    signature byte width, the expected shape of every block (load-time
    truncation check), and the per-object offset index.

``block_<name>.npy`` (little-endian ``<f8`` / ``<i8``; signatures ``u1``)
    ========================  ========  =======================================
    name                      shape     contents
    ========================  ========  =======================================
    history                   (H, 2)    all training positions, concatenated
    region_rows               (R, 4)    offset, index, n_points, n_subs
    region_geo                (R, 6)    center_x, center_y, min/max x, y
    region_points             (P, 2)    member points, concatenated
    region_sub_ids            (S,)      contributing sub-trajectory ids
    pattern_rows              (N, W+2)  premise region ids (−1 padded),
                                        consequence id, support
    pattern_conf              (N,)      pattern confidences
    tree_entry_sigs           (E, Sb)   leaf-entry signatures, bulk-load
                                        order, little-endian byte rows
    tree_entry_pattern        (E,)      pattern row of each leaf entry
    tree_node_sigs            (I, Sb)   internal-node signatures, bottom-up
                                        level order (root last)
    kernel_buckets            (B, 3)    time_id, n_rows, table width
    kernel_rows               (K, 4)    seq, pattern row, support, cons offset
    kernel_conf               (K,)      candidate confidences
    kernel_minspeed           (K,)      velocity-partition minimum speeds
    kernel_cells_cols         (C,)      flattened sparse ``bit_cols``
    kernel_cells_weights      (C,)      flattened sparse ``bit_weights``
    ========================  ========  =======================================

Because the blocks are raw ``.npy`` files (not a zip archive),
``np.load(mmap_mode="r")`` maps them zero-copy: a loader slices views out
of the mapped blocks instead of decompressing and rebuilding, so a shard
worker restricted to its ring slice touches only the pages its objects
occupy.  Region centers and bounding boxes are **stored** rather than
recomputed — float reductions are accumulation-order sensitive and the
SHA-256 state fingerprints must stay byte-identical to a v1 load.

The tree and score-kernel blocks are extracted at save time from a
throwaway bulk-loaded tree (never from the live tree, which a delta
refit may have patched into a different structure and DFS entry order)
so the stored layout matches exactly what a from-scratch bulk load would
produce.  The loader then replays the stored structure through
``bulk_load_packed`` — no key encoding, sorting, or signature OR-ing —
reassembles :class:`~repro.core.scorekernel.ScoreKernel` from views, and
primes the tree's kernel cache, making the first prediction skip the
full ``ScoreKernel.build`` pass.

Copy-on-write discipline: mapped blocks are read-only.  Every mutation
path (``update``/delta refit) already *constructs new arrays* for the
state it changes and leaves untouched regions interned — so a refit on an
mmap-backed model transparently materialises private copies of only the
arrays it patches, and an accidental in-place write raises immediately.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Collection, Iterable, Sequence

import numpy as np

from ..trajectory.trajectory import Trajectory
from .config import HPMConfig
from .fleet import FleetPredictionModel
from .keys import KeyCodec
from .model import HybridPredictionModel
from .parallel import run_keyed_tasks
from .patterns import TrajectoryPattern
from .regions import RegionSet, regions_from_arrays
from .scorekernel import CandidatePack, ScoreKernel
from .tpt import TrajectoryPatternTree

__all__ = [
    "FLEET_FORMAT_V2",
    "extract_object_arrays",
    "load_fleet_v2",
    "merge_packed_snapshots",
    "repack_snapshot_subset",
    "save_fleet_v2",
    "snapshot_stat",
    "write_packed_snapshot",
]

FLEET_FORMAT_V2 = 2
_MANIFEST = "manifest.json"

# Block name -> (dtype, trailing shape).  Dtypes are explicit little-endian;
# on the (rare) big-endian host the loader materialises native copies.
_BLOCK_SPECS: dict[str, tuple[str, tuple[int, ...]]] = {
    "history": ("<f8", (2,)),
    "region_rows": ("<i8", (4,)),
    "region_geo": ("<f8", (6,)),
    "region_points": ("<f8", (2,)),
    "region_sub_ids": ("<i8", ()),
    "pattern_rows": ("<i8", None),  # trailing dim is premise_width + 2
    "pattern_conf": ("<f8", ()),
    "tree_entry_sigs": ("u1", None),  # trailing dim is sig_bytes
    "tree_entry_pattern": ("<i8", ()),
    "tree_node_sigs": ("u1", None),  # trailing dim is sig_bytes
    "kernel_buckets": ("<i8", (3,)),
    "kernel_rows": ("<i8", (4,)),
    "kernel_conf": ("<f8", ()),
    "kernel_minspeed": ("<f8", ()),
    "kernel_cells_cols": ("<i8", ()),
    "kernel_cells_weights": ("<f8", ()),
}


def _block_path(directory: Path, name: str) -> Path:
    return directory / f"block_{name}.npy"


# ----------------------------------------------------------------------
# save side: per-object array extraction
# ----------------------------------------------------------------------
def extract_object_arrays(model: HybridPredictionModel, kind: str) -> dict:
    """Columnar arrays for one fitted model (the v2 writer's unit of work).

    ``kind`` selects the weight family the kernel tables are packed for
    (the fleet config's ``weight_function``).  Returns plain numpy arrays
    keyed by block name plus ``start_time`` and an optional ``kernel``
    sub-dict; ``write_packed_snapshot`` concatenates them.
    """
    if not model.is_fitted:
        raise ValueError("cannot snapshot an unfitted model")
    regions = model.regions_
    history = model.history_
    num_regions = len(regions)
    region_rows = np.empty((num_regions, 4), dtype=np.int64)
    region_geo = np.empty((num_regions, 6), dtype=np.float64)
    points_blocks: list[np.ndarray] = []
    sub_blocks: list[np.ndarray] = []
    for i, region in enumerate(regions):
        region_rows[i] = (
            region.offset,
            region.index,
            region.points.shape[0],
            len(region.subtrajectory_ids),
        )
        bbox = region.bbox
        region_geo[i] = (
            region.center.x,
            region.center.y,
            bbox.min_x,
            bbox.min_y,
            bbox.max_x,
            bbox.max_y,
        )
        points_blocks.append(np.asarray(region.points, dtype=np.float64))
        sub_blocks.append(np.asarray(region.subtrajectory_ids, dtype=np.int64))

    patterns = model.patterns_
    max_premise = max((len(p.premise) for p in patterns), default=1)
    pattern_rows = np.full(
        (len(patterns), max_premise + 2), -1, dtype=np.int64
    )
    pattern_conf = np.empty(len(patterns), dtype=np.float64)
    region_id = regions.region_id
    for i, pattern in enumerate(patterns):
        for j, region in enumerate(pattern.premise):
            pattern_rows[i, j] = region_id(region)
        pattern_rows[i, max_premise] = region_id(pattern.consequence)
        pattern_rows[i, max_premise + 1] = pattern.support
        pattern_conf[i] = pattern.confidence

    return {
        "start_time": history.start_time,
        "history": np.asarray(history.positions, dtype=np.float64),
        "region_rows": region_rows,
        "region_geo": region_geo,
        "region_points": (
            np.vstack(points_blocks)
            if points_blocks
            else np.empty((0, 2), dtype=np.float64)
        ),
        "region_sub_ids": (
            np.concatenate(sub_blocks)
            if sub_blocks
            else np.empty(0, dtype=np.int64)
        ),
        "pattern_rows": pattern_rows,
        "pattern_conf": pattern_conf,
        **_extract_index_arrays(model.config, regions, patterns, kind),
    }


def _sig_rows(signatures: Iterable[int], count: int, width: int) -> np.ndarray:
    """Pack arbitrary-precision signatures as ``(count, width)`` uint8 rows
    (little-endian byte order; trailing padding bytes are zero)."""
    buf = bytearray(count * width)
    for i, signature in enumerate(signatures):
        buf[i * width : (i + 1) * width] = signature.to_bytes(width, "little")
    return np.frombuffer(bytes(buf), dtype=np.uint8).reshape(count, width)


def _extract_index_arrays(
    config: HPMConfig,
    regions: RegionSet,
    patterns: Sequence[TrajectoryPattern],
    kind: str,
) -> dict:
    """Serialised TPT structure and kernel blocks, in canonical order.

    A live tree may have been delta-patched (insert/delete), which
    perturbs both its packed structure and the DFS ``seq`` numbering,
    while every snapshot *load* bulk loads from scratch — so both the
    tree blocks and the kernel arrays are extracted from a throwaway
    bulk-loaded tree, guaranteeing the stored structure matches what the
    loader will reconstruct.  Returns ``{"tree": ..., "kernel": ...}``
    (either may be ``None``).
    """
    if not patterns or len(regions) == 0:
        return {"tree": None, "kernel": None}
    codec = KeyCodec.from_patterns(regions, patterns)
    tree = TrajectoryPatternTree(
        codec,
        max_entries=config.tree_max_entries,
        min_entries=config.tree_min_entries,
    )
    tree.bulk_load_patterns(list(patterns))
    pattern_row = {id(p): i for i, p in enumerate(patterns)}

    entries, node_signatures = tree.export_packed()
    sig_bytes = max(1, (tree.signature_bits + 7) // 8)
    tree_arrays = {
        "sig_bytes": sig_bytes,
        "tree_entry_sigs": _sig_rows(
            (e.signature for e in entries), len(entries), sig_bytes
        ),
        "tree_entry_pattern": np.fromiter(
            (pattern_row[id(e.payload)] for e in entries),
            dtype=np.int64,
            count=len(entries),
        ),
        "tree_node_sigs": _sig_rows(
            node_signatures, len(node_signatures), sig_bytes
        ),
    }

    kernel = tree.score_kernel(kind)
    if kernel is None:  # corpus not packable; loads fall back to lazy build
        return {"tree": tree_arrays, "kernel": None}
    buckets: list[tuple[int, int, int]] = []
    row_blocks: list[np.ndarray] = []
    conf_blocks: list[np.ndarray] = []
    speed_blocks: list[np.ndarray] = []
    col_blocks: list[np.ndarray] = []
    weight_blocks: list[np.ndarray] = []
    for time_id, pack in kernel.export_buckets():
        buckets.append((time_id, pack.n, pack.width))
        rows = np.empty((pack.n, 4), dtype=np.int64)
        rows[:, 0] = pack.seqs
        rows[:, 1] = np.fromiter(
            (pattern_row[id(p)] for p in pack.patterns),
            dtype=np.int64,
            count=pack.n,
        )
        rows[:, 2] = pack.supports
        rows[:, 3] = pack.cons_offsets
        row_blocks.append(rows)
        conf_blocks.append(pack.confidences)
        speed_blocks.append(pack.min_speeds)
        col_blocks.append(
            np.asarray(pack.bit_cols, dtype=np.int64).reshape(-1)
        )
        weight_blocks.append(pack.bit_weights.reshape(-1))
    kernel_arrays = {
        "kernel_buckets": np.asarray(buckets, dtype=np.int64).reshape(-1, 3),
        "kernel_rows": (
            np.concatenate(row_blocks)
            if row_blocks
            else np.empty((0, 4), dtype=np.int64)
        ),
        "kernel_conf": (
            np.concatenate(conf_blocks)
            if conf_blocks
            else np.empty(0, dtype=np.float64)
        ),
        "kernel_minspeed": (
            np.concatenate(speed_blocks)
            if speed_blocks
            else np.empty(0, dtype=np.float64)
        ),
        "kernel_cells_cols": (
            np.concatenate(col_blocks)
            if col_blocks
            else np.empty(0, dtype=np.int64)
        ),
        "kernel_cells_weights": (
            np.concatenate(weight_blocks)
            if weight_blocks
            else np.empty(0, dtype=np.float64)
        ),
    }
    return {"tree": tree_arrays, "kernel": kernel_arrays}


# ----------------------------------------------------------------------
# save side: the packed writer
# ----------------------------------------------------------------------
def _pad_pattern_rows(rows: np.ndarray, width: int) -> np.ndarray:
    """Re-pad a ``(N, w+2)`` pattern table to global premise width."""
    local = rows.shape[1] - 2
    if local == width:
        return rows
    out = np.full((rows.shape[0], width + 2), -1, dtype=np.int64)
    out[:, :local] = rows[:, :local]
    out[:, width] = rows[:, local]
    out[:, width + 1] = rows[:, local + 1]
    return out


def _pad_sig_rows(rows: np.ndarray, width: int) -> np.ndarray:
    """Widen uint8 signature rows to the global byte width.

    Signatures are little-endian, so the padding bytes go on the right
    and the decoded integers are unchanged.
    """
    if rows.shape[1] == width:
        return rows
    out = np.zeros((rows.shape[0], width), dtype=np.uint8)
    out[:, : rows.shape[1]] = rows
    return out


def write_packed_snapshot(
    directory: str | Path,
    config: dict,
    kernel_kind: str,
    entries: Sequence[tuple[str, dict]],
) -> None:
    """Write a v2 snapshot from per-object array dicts.

    ``entries`` is the deterministic manifest order: the same objects in
    the same order always produce byte-identical blocks.  The manifest is
    written last, so a manifest on disk implies complete blocks.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    premise_width = max(
        (arrays["pattern_rows"].shape[1] - 2 for _oid, arrays in entries),
        default=1,
    )
    sig_bytes = max(
        (
            arrays["tree"]["sig_bytes"]
            for _oid, arrays in entries
            if arrays.get("tree") is not None
        ),
        default=1,
    )
    concat: dict[str, list[np.ndarray]] = {name: [] for name in _BLOCK_SPECS}
    cursors = {name: 0 for name in _BLOCK_SPECS}
    objects: dict[str, dict] = {}

    def _append(name: str, arr: np.ndarray) -> list[int]:
        start = cursors[name]
        cursors[name] = start + arr.shape[0]
        concat[name].append(arr)
        return [start, cursors[name]]

    for object_id, arrays in entries:
        entry = {
            "start_time": int(arrays["start_time"]),
            "history": _append("history", arrays["history"]),
            "regions": _append("region_rows", arrays["region_rows"]),
            "points": _append("region_points", arrays["region_points"]),
            "sub_ids": _append("region_sub_ids", arrays["region_sub_ids"]),
            "patterns": _append(
                "pattern_rows",
                _pad_pattern_rows(arrays["pattern_rows"], premise_width),
            ),
        }
        _append("region_geo", arrays["region_geo"])
        _append("pattern_conf", arrays["pattern_conf"])
        tree = arrays.get("tree")
        if tree is None:
            entry["tree"] = None
        else:
            entry["tree"] = {
                "entries": _append(
                    "tree_entry_sigs",
                    _pad_sig_rows(tree["tree_entry_sigs"], sig_bytes),
                ),
                "nodes": _append(
                    "tree_node_sigs",
                    _pad_sig_rows(tree["tree_node_sigs"], sig_bytes),
                ),
            }
            _append("tree_entry_pattern", tree["tree_entry_pattern"])
        kernel = arrays.get("kernel")
        if kernel is None:
            entry["kernel"] = None
        else:
            entry["kernel"] = {
                "buckets": _append("kernel_buckets", kernel["kernel_buckets"]),
                "rows": _append("kernel_rows", kernel["kernel_rows"]),
                "cells": _append(
                    "kernel_cells_cols", kernel["kernel_cells_cols"]
                ),
            }
            _append("kernel_conf", kernel["kernel_conf"])
            _append("kernel_minspeed", kernel["kernel_minspeed"])
            _append("kernel_cells_weights", kernel["kernel_cells_weights"])
        objects[object_id] = entry

    dynamic_trailing = {
        "pattern_rows": (premise_width + 2,),
        "tree_entry_sigs": (sig_bytes,),
        "tree_node_sigs": (sig_bytes,),
    }
    shapes: dict[str, list[int]] = {}
    for name, (dtype, trailing) in _BLOCK_SPECS.items():
        if trailing is None:
            trailing = dynamic_trailing[name]
        parts = concat[name]
        if parts:
            block = np.concatenate(parts, axis=0)
        else:
            block = np.empty((0, *trailing))
        block = np.ascontiguousarray(block, dtype=np.dtype(dtype))
        if block.shape[1:] != tuple(trailing):
            raise ValueError(
                f"block {name}: shape {block.shape} does not match "
                f"spec trailing dims {trailing}"
            )
        np.save(_block_path(directory, name), block)
        shapes[name] = list(block.shape)

    manifest = {
        "format_version": FLEET_FORMAT_V2,
        "config": config,
        "kernel_kind": kernel_kind,
        "premise_width": premise_width,
        "sig_bytes": sig_bytes,
        "blocks": shapes,
        "objects": objects,
    }
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))


def save_fleet_v2(
    fleet: FleetPredictionModel,
    directory: str | Path,
    max_workers: int | None = None,
    executor: str = "thread",
) -> None:
    """Serialise a fleet as a packed v2 snapshot.

    Per-object array extraction (which includes packing the kernel tables
    from a throwaway bulk-loaded tree) fans out over
    :func:`~repro.core.parallel.run_keyed_tasks`; the concatenation and
    block writes are serial in manifest order, keeping the output
    deterministic regardless of worker count.
    """
    if len(fleet) == 0:
        raise ValueError("cannot save an empty fleet")
    kind = fleet.config.weight_function
    object_ids = fleet.object_ids()
    jobs = [(oid, (fleet[oid], kind)) for oid in object_ids]
    results, failures = run_keyed_tasks(
        extract_object_arrays, jobs, max_workers=max_workers, executor=executor
    )
    if failures:
        for object_id in object_ids:
            if object_id in failures:
                raise failures[object_id]
    write_packed_snapshot(
        directory,
        dataclasses.asdict(fleet.config),
        kind,
        [(oid, results[oid]) for oid in object_ids],
    )


# ----------------------------------------------------------------------
# load side
# ----------------------------------------------------------------------
def open_blocks(
    directory: str | Path, manifest: dict, mmap: bool = True
) -> dict[str, np.ndarray]:
    """Open every block of a v2 snapshot, validating against the manifest.

    With ``mmap=True`` (the default) the arrays are read-only memory maps
    — opening is O(1) per block and pages fault in lazily.  Shape
    mismatches and unreadable files raise ``ValueError`` naming the
    block, so truncation or corruption is caught before any model is
    half-built.
    """
    directory = Path(directory)
    blocks: dict[str, np.ndarray] = {}
    for name, shape in manifest["blocks"].items():
        path = _block_path(directory, name)
        try:
            arr = np.load(
                path, mmap_mode="r" if mmap else None, allow_pickle=False
            )
        except (OSError, ValueError) as exc:
            raise ValueError(
                f"{path}: unreadable snapshot block "
                f"(truncated or corrupt): {exc}"
            ) from exc
        if list(arr.shape) != list(shape):
            raise ValueError(
                f"{path}: block shape {list(arr.shape)} does not match "
                f"manifest {list(shape)} (truncated or corrupt snapshot)"
            )
        if not arr.dtype.isnative:
            arr = arr.astype(arr.dtype.newbyteorder("="))
        blocks[name] = arr
    return blocks


def _kernel_from_arrays(
    blocks: dict[str, np.ndarray],
    index: dict,
    patterns: list[TrajectoryPattern],
    codec: KeyCodec,
    kind: str,
) -> ScoreKernel:
    """Reassemble a :class:`ScoreKernel` from stored blocks (zero-copy).

    ``bit_cols``/``bit_weights``/``confidences`` stay views into the
    mapped cell blocks; only the Python-level pattern lists are rebuilt.
    """
    b0, b1 = index["buckets"]
    r0, r1 = index["rows"]
    c0, c1 = index["cells"]
    buckets = blocks["kernel_buckets"][b0:b1].tolist()
    rows = blocks["kernel_rows"][r0:r1]
    conf = blocks["kernel_conf"][r0:r1]
    speeds = blocks["kernel_minspeed"][r0:r1]
    cols = blocks["kernel_cells_cols"][c0:c1]
    weights = blocks["kernel_cells_weights"][c0:c1]
    packs: dict[int, CandidatePack] = {}
    row_cursor = 0
    cell_cursor = 0
    for time_id, n, width in buckets:
        row_slice = rows[row_cursor : row_cursor + n]
        cells = slice(cell_cursor, cell_cursor + n * width)
        packs[time_id] = CandidatePack(
            seqs=row_slice[:, 0],
            bit_cols=cols[cells].reshape(n, width).astype(np.intp, copy=False),
            bit_weights=weights[cells].reshape(n, width),
            confidences=conf[row_cursor : row_cursor + n],
            supports=row_slice[:, 2],
            cons_offsets=row_slice[:, 3],
            min_speeds=speeds[row_cursor : row_cursor + n],
            patterns=[patterns[i] for i in row_slice[:, 1].tolist()],
        )
        row_cursor += n
        cell_cursor += n * width
    offset_time_ids = {
        offset: time_id
        for time_id, offset in enumerate(codec.consequence_offsets())
    }
    return ScoreKernel(kind, codec.premise_length, packs, offset_time_ids)


def _unpack_tree(
    blocks: dict[str, np.ndarray], index: dict, sig_bytes: int
) -> tuple[list[int], list[int], list[int]]:
    """Decode the serialised tree structure for ``bulk_load_packed``.

    Returns ``(entry_signatures, entry_pattern_rows, node_signatures)``;
    signatures come back as Python bigints from their little-endian byte
    rows, already in the canonical bulk-load order.
    """
    e0, e1 = index["entries"]
    n0, n1 = index["nodes"]
    ebuf = blocks["tree_entry_sigs"][e0:e1].tobytes()
    nbuf = blocks["tree_node_sigs"][n0:n1].tobytes()
    w = sig_bytes
    entry_sigs = [
        int.from_bytes(ebuf[i * w : (i + 1) * w], "little")
        for i in range(e1 - e0)
    ]
    node_sigs = [
        int.from_bytes(nbuf[i * w : (i + 1) * w], "little")
        for i in range(n1 - n0)
    ]
    return entry_sigs, blocks["tree_entry_pattern"][e0:e1].tolist(), node_sigs


def _restore_object(
    config: HPMConfig,
    blocks: dict[str, np.ndarray],
    entry: dict,
    premise_width: int,
    sig_bytes: int,
    kernel_kind: str | None,
) -> HybridPredictionModel:
    """Rebuild one model from its slice of the mapped blocks."""
    h0, h1 = entry["history"]
    history = Trajectory(
        blocks["history"][h0:h1], start_time=entry["start_time"]
    )
    r0, r1 = entry["regions"]
    p0, _p1 = entry["points"]
    s0, s1 = entry["sub_ids"]
    regions_list = regions_from_arrays(
        blocks["region_rows"][r0:r1],
        blocks["region_geo"][r0:r1],
        blocks["region_points"],
        blocks["region_sub_ids"][s0:s1],
        points_start=p0,
    )
    region_set = RegionSet(regions_list, period=config.period, eps=config.eps)

    t0, t1 = entry["patterns"]
    rows = blocks["pattern_rows"][t0:t1]
    confidences = blocks["pattern_conf"][t0:t1].tolist()
    # Premises repeat heavily (every consequence shares its premise row),
    # so intern them in bulk: one tuple per *unique* premise row instead
    # of per-pattern tuple construction + dict probing.
    unique_premises, inverse = np.unique(
        rows[:, :premise_width], axis=0, return_inverse=True
    )
    premises = [
        tuple(regions_list[rid] for rid in urow if rid >= 0)
        for urow in unique_premises.tolist()
    ]
    unchecked = TrajectoryPattern._unchecked
    patterns = [
        unchecked(
            premise=premises[pi],
            consequence=regions_list[cid],
            support=support,
            confidence=confidence,
        )
        for pi, cid, support, confidence in zip(
            inverse.tolist(),
            rows[:, premise_width].tolist(),
            rows[:, premise_width + 1].tolist(),
            confidences,
        )
    ]

    tree_index = entry.get("tree")
    tree_packed = (
        _unpack_tree(blocks, tree_index, sig_bytes)
        if tree_index is not None
        else None
    )
    model = HybridPredictionModel(config)
    model._restore(history, region_set, patterns, tree_packed=tree_packed)
    kernel_index = entry.get("kernel")
    if (
        kernel_index is not None
        and kernel_kind is not None
        and model.tree_ is not None
    ):
        kernel = _kernel_from_arrays(
            blocks, kernel_index, patterns, model.codec_, kernel_kind
        )
        model.tree_.prime_score_kernel(kernel_kind, kernel)
    return model


def load_fleet_v2(
    directory: str | Path,
    manifest: dict,
    max_workers: int | None = None,
    executor: str = "thread",
    object_ids: "Collection[str] | None" = None,
    mmap: bool = True,
) -> FleetPredictionModel:
    """Reload a v2 fleet snapshot (dispatched from ``load_fleet``).

    The blocks are opened once and shared; each object's restore slices
    views out of them, so with ``object_ids`` restricted to a ring slice
    only that slice's pages are ever touched.  ``executor="process"`` is
    coerced to threads: the blocks are shared mappings, and shipping them
    to worker processes would materialise a private copy per job.
    """
    directory = Path(directory)
    objects: dict[str, dict] = manifest["objects"]
    if object_ids is not None:
        wanted = set(object_ids)
        missing = sorted(wanted - objects.keys())
        if missing:
            raise ValueError(
                f"{directory}: object ids not in the snapshot manifest: "
                f"{', '.join(missing)}"
            )
        objects = {
            object_id: entry
            for object_id, entry in objects.items()
            if object_id in wanted
        }
    config = HPMConfig(**manifest["config"])
    stored_kind = manifest.get("kernel_kind")
    # Stored kernels only apply when the fleet still scores with the
    # weight family they were packed for; otherwise first queries build
    # the right kernel lazily, exactly as a v1 load would.
    kind = stored_kind if stored_kind == config.weight_function else None
    blocks = open_blocks(directory, manifest, mmap=mmap)
    premise_width = int(manifest["premise_width"])
    sig_bytes = int(manifest.get("sig_bytes", 1))
    fleet = FleetPredictionModel(config)
    jobs = [
        (object_id, (config, blocks, entry, premise_width, sig_bytes, kind))
        for object_id, entry in objects.items()
    ]
    results, failures = run_keyed_tasks(
        _restore_object,
        jobs,
        max_workers=max_workers,
        executor="thread" if executor == "process" else executor,
    )
    if failures:
        for object_id, _ in jobs:
            if object_id in failures:
                raise failures[object_id]
    for object_id, model in results.items():
        fleet.adopt_object(object_id, model)
    return fleet


# ----------------------------------------------------------------------
# repack: subset / merge without model reconstruction
# ----------------------------------------------------------------------
def _slice_object_arrays(
    blocks: dict[str, np.ndarray], entry: dict, sig_bytes: int
) -> dict:
    """One object's arrays as views into the source blocks (for repack)."""
    h0, h1 = entry["history"]
    r0, r1 = entry["regions"]
    p0, p1 = entry["points"]
    s0, s1 = entry["sub_ids"]
    t0, t1 = entry["patterns"]
    arrays = {
        "start_time": entry["start_time"],
        "history": blocks["history"][h0:h1],
        "region_rows": blocks["region_rows"][r0:r1],
        "region_geo": blocks["region_geo"][r0:r1],
        "region_points": blocks["region_points"][p0:p1],
        "region_sub_ids": blocks["region_sub_ids"][s0:s1],
        "pattern_rows": blocks["pattern_rows"][t0:t1],
        "pattern_conf": blocks["pattern_conf"][t0:t1],
    }
    tree = entry.get("tree")
    if tree is None:
        arrays["tree"] = None
    else:
        e0, e1 = tree["entries"]
        n0, n1 = tree["nodes"]
        arrays["tree"] = {
            "sig_bytes": sig_bytes,
            "tree_entry_sigs": blocks["tree_entry_sigs"][e0:e1],
            "tree_entry_pattern": blocks["tree_entry_pattern"][e0:e1],
            "tree_node_sigs": blocks["tree_node_sigs"][n0:n1],
        }
    kernel = entry.get("kernel")
    if kernel is None:
        arrays["kernel"] = None
    else:
        b0, b1 = kernel["buckets"]
        k0, k1 = kernel["rows"]
        c0, c1 = kernel["cells"]
        arrays["kernel"] = {
            "kernel_buckets": blocks["kernel_buckets"][b0:b1],
            "kernel_rows": blocks["kernel_rows"][k0:k1],
            "kernel_conf": blocks["kernel_conf"][k0:k1],
            "kernel_minspeed": blocks["kernel_minspeed"][k0:k1],
            "kernel_cells_cols": blocks["kernel_cells_cols"][c0:c1],
            "kernel_cells_weights": blocks["kernel_cells_weights"][c0:c1],
        }
    return arrays


def read_v2_manifest(directory: str | Path) -> dict:
    """Read a v2 snapshot manifest, validating the format version."""
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.is_file():
        raise ValueError(f"{directory} is not a fleet snapshot (no {_MANIFEST})")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != FLEET_FORMAT_V2:
        raise ValueError(
            f"{directory}: not a v2 fleet snapshot "
            f"(format {manifest.get('format_version')})"
        )
    return manifest


def repack_snapshot_subset(
    source: str | Path,
    output: str | Path,
    object_ids: Iterable[str],
) -> None:
    """Write a v2 snapshot holding a subset of ``source``'s objects.

    Pure block slicing — no model deserialisation — so splitting a large
    snapshot into shards costs one array copy per object, and an empty
    subset still yields a valid (empty) snapshot.
    """
    manifest = read_v2_manifest(source)
    blocks = open_blocks(Path(source), manifest, mmap=True)
    sig_bytes = int(manifest.get("sig_bytes", 1))
    objects = manifest["objects"]
    entries = []
    for object_id in object_ids:
        if object_id not in objects:
            raise ValueError(
                f"{source}: object id {object_id!r} not in the snapshot manifest"
            )
        entries.append(
            (
                object_id,
                _slice_object_arrays(blocks, objects[object_id], sig_bytes),
            )
        )
    write_packed_snapshot(
        output, manifest["config"], manifest["kernel_kind"], entries
    )


def merge_packed_snapshots(
    sources: Sequence[str | Path], output: str | Path
) -> list[str]:
    """Merge several v2 snapshots into one, objects in sorted-id order.

    Configs and kernel kinds must agree; duplicate object ids raise.
    Returns the merged object ids (sorted).
    """
    merged: dict[str, tuple[dict[str, np.ndarray], dict, int]] = {}
    config: dict | None = None
    kind: str | None = None
    for source in sources:
        manifest = read_v2_manifest(source)
        if config is None:
            config = manifest["config"]
            kind = manifest["kernel_kind"]
            HPMConfig(**config)
        elif manifest["config"] != config:
            raise ValueError(
                f"{source}: snapshot config differs from the other sources'"
            )
        blocks = open_blocks(Path(source), manifest, mmap=True)
        sig_bytes = int(manifest.get("sig_bytes", 1))
        for object_id, entry in manifest["objects"].items():
            if object_id in merged:
                raise ValueError(
                    f"object id {object_id!r} appears in more than one snapshot"
                )
            merged[object_id] = (blocks, entry, sig_bytes)
    if config is None:
        raise ValueError("no source snapshots to merge")
    entries = [
        (object_id, _slice_object_arrays(*merged[object_id]))
        for object_id in sorted(merged)
    ]
    write_packed_snapshot(output, config, kind, entries)
    return sorted(merged)


# ----------------------------------------------------------------------
# introspection
# ----------------------------------------------------------------------
def snapshot_stat(directory: str | Path) -> dict:
    """Layout summary of a fleet snapshot (either format).

    Returns a JSON-serialisable dict: format version, object count,
    total regions/patterns, on-disk bytes (per block for v2), and kernel
    coverage — the ``repro snapshot-stat`` CLI prints it.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.is_file():
        raise ValueError(f"{directory} is not a fleet snapshot (no {_MANIFEST})")
    manifest = json.loads(manifest_path.read_text())
    version = manifest.get("format_version")
    stat: dict = {
        "path": str(directory),
        "format_version": version,
        "objects": len(manifest.get("objects", {})),
    }
    if version == FLEET_FORMAT_V2:
        blocks = {}
        total = 0
        for name, shape in manifest["blocks"].items():
            path = _block_path(directory, name)
            size = path.stat().st_size if path.is_file() else None
            blocks[name] = {"shape": shape, "bytes": size}
            if size:
                total += size
        entries = manifest["objects"].values()
        stat.update(
            {
                "kernel_kind": manifest.get("kernel_kind"),
                "premise_width": manifest.get("premise_width"),
                "regions": manifest["blocks"]["region_rows"][0],
                "patterns": manifest["blocks"]["pattern_rows"][0],
                "kernel_objects": sum(
                    1 for e in entries if e.get("kernel") is not None
                ),
                "blocks": blocks,
                "total_block_bytes": total,
            }
        )
    else:
        files = manifest.get("objects", {}).values()
        total = sum(
            (directory / filename).stat().st_size
            for filename in files
            if (directory / filename).is_file()
        )
        stat["total_archive_bytes"] = total
    return stat
