"""Prepared query plans: per-window work hoisted out of the per-query loop.

``HybridPredictor.predict`` used to redo the same work for every query
against the same recent window: map the window to frequent regions, encode
the premise key, fit the motion-fallback function, score *every* candidate
and full-sort it.  ``predict_trajectory`` multiplied that by the horizon
length and the serve batcher by the batch size.

:class:`PreparedQuery` factors the window-dependent work out once:

* the recent window is mapped to regions and the premise key is encoded at
  construction time;
* the motion-fallback function (and its linear understudy) is fitted
  lazily, at most once per plan;
* FQP candidate scoring is memoised per query offset ``tq mod T`` — a
  trajectory sweep revisits at most ``T`` distinct offsets;
* top-k selection uses ``heapq.nsmallest`` over the scored candidates
  instead of a full sort.

Every answer is **byte-identical** to the unprepared path: similarity
floats are accumulated in the same order (see
:class:`repro.core.similarity.PremiseScorer`), ``heapq.nsmallest`` is
documented equivalent to ``sorted(...)[:k]`` (stable for equal keys), and
the fallback chain degrades exactly like the original
``_motion_prediction`` (primary function, then linear, then stationary).

Candidate scoring itself runs on one of two backends
(``HPMConfig.query_backend``): the packed numpy kernel
(:mod:`repro.core.scorekernel`, default) or the per-candidate ``"scan"``
loop kept as the oracle.  The kernel reproduces the scan path's floats
bit for bit (see the scorekernel module docstring); a plan silently
demotes itself to the scan backend when the kernel is unavailable or
raises, counting the demotion in ``kernel_fallbacks`` and the
``predict_kernel_fallback_total`` metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import nsmallest
from typing import Iterator, Sequence

import numpy as np

from ..motion.base import MotionFunction, MotionFunctionFactory
from ..motion.linear import LinearMotionFunction
from ..signature.bitset import iter_set_bits
from ..trajectory.point import Point, TimedPoint
from .config import HPMConfig
from .keys import KeyCodec
from .patterns import TrajectoryPattern
from .regions import FrequentRegion, RegionSet
from .scorekernel import (
    KernelHits,
    finalize_forward,
    premise_scores,
    prime_plan_queries,
    window_speed,
)
from .similarity import PremiseScorer
from .tpt import TrajectoryPatternTree

__all__ = ["Prediction", "PreparedQuery", "map_window_to_regions"]


@dataclass(frozen=True)
class Prediction:
    """One predicted location with its provenance.

    ``method`` is ``"fqp"``, ``"bqp"`` or ``"motion"``; for pattern-based
    answers ``pattern`` is the winning trajectory pattern and ``score`` its
    ranking weight ``S_p``.
    """

    location: Point
    method: str
    score: float | None = None
    pattern: TrajectoryPattern | None = None

    def __post_init__(self) -> None:
        if self.method not in ("fqp", "bqp", "motion"):
            raise ValueError(f"unknown prediction method {self.method!r}")


def map_window_to_regions(
    regions: RegionSet, window: Sequence[TimedPoint], period: int
) -> list[FrequentRegion]:
    """Map a recent-movement window onto the frequent regions it passes.

    Section V-C: "we investigate which frequent regions the object has
    visited recently from ``m_q``".  Duplicates are collapsed, first-visit
    order is kept.
    """
    seen: list[FrequentRegion] = []
    for sample in window:
        region = regions.locate(sample.point, sample.t % period)
        if region is not None and region not in seen:
            seen.append(region)
    return seen


def _rank_key(scored: tuple[float, TrajectoryPattern]) -> tuple[float, float, int]:
    # Same ordering as the original ``sort + [:k]``: score desc, then
    # confidence desc, then support desc; ``nsmallest`` is stable, so full
    # ties keep candidate (tree) order exactly like ``list.sort`` did.
    score, pattern = scored
    return (-score, -pattern.confidence, -pattern.support)


_UNSET = object()


class PreparedQuery:
    """One recent-movement window, prepared to answer many query times.

    Built via :meth:`HybridPredictor.prepare` or
    :meth:`HybridPredictionModel.prepare`; ``codec``/``tree`` are ``None``
    in pattern-free mode, where every query is answered by the motion
    fallback.
    """

    def __init__(
        self,
        regions: RegionSet | None,
        codec: KeyCodec | None,
        tree: TrajectoryPatternTree | None,
        config: HPMConfig,
        motion_factory: MotionFunctionFactory,
        recent: Sequence[TimedPoint],
        stats: dict | None = None,
        scorer: PremiseScorer | None = None,
        metrics=None,
    ):
        recent = list(recent)
        if not recent:
            raise ValueError("recent movements must be non-empty")
        self.config = config
        self.recent = recent
        self.current_time: int = recent[-1].t
        self.motion_factory = motion_factory
        # Shared with the owning predictor so path counts keep accumulating
        # in one place; a standalone plan gets its own dict.
        self.stats = stats if stats is not None else {"fqp": 0, "bqp": 0, "motion": 0}
        self._regions = regions
        self._codec = codec
        self._tree = tree
        self._scorer = (
            scorer if scorer is not None else PremiseScorer(config.weight_function)
        )
        self._window = recent[-config.recent_window :]
        if regions is not None and codec is not None:
            self.recent_regions = map_window_to_regions(
                regions, self._window, config.period
            )
            self.premise_key: int = codec.premise_key(self.recent_regions)
        else:
            self.recent_regions = []
            self.premise_key = 0
        # offset -> scan scored-candidate list, kernel KernelHits, or None
        # when no candidate — FQP work is per-offset, so a sweep computes
        # each at most once.  Explicitly bounded to ``period`` entries
        # (offsets live in [0, T), but a hostile query stream must not be
        # able to grow a plan without bound either way).
        self._fqp_scored: dict[int, object] = {}
        self._motion_primary: MotionFunction | None | object = _UNSET
        self._motion_linear: MotionFunction | None | object = _UNSET
        self._metrics = metrics
        self.kernel_fallbacks = 0
        self._backend = "scan"
        self._kernel = None
        self._qvec: np.ndarray | None = None
        self._velocity_cap: float | None = None
        if tree is not None and config.query_backend == "kernel":
            kernel = tree.score_kernel(self._scorer.kind)
            if kernel is None or kernel.premise_length != codec.premise_length:
                self._count_fallback()
            else:
                self._backend = "kernel"
                self._kernel = kernel
                qvec = np.zeros(codec.premise_length, dtype=np.float64)
                for bit in iter_set_bits(self.premise_key):
                    qvec[bit] = 1.0
                self._qvec = qvec
                if config.velocity_filter:
                    self._velocity_cap = kernel.velocity_cap(
                        window_speed(self._window),
                        config.velocity_slack,
                        config.velocity_bands,
                    )

    # ------------------------------------------------------------------
    # public API (mirrors HybridPredictor's validation order exactly)
    # ------------------------------------------------------------------
    def predict(self, query_time: int, k: int | None = None) -> list[Prediction]:
        """Answer one predictive query from this plan."""
        k = self.config.top_k if k is None else k
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        tc = self.current_time
        if query_time <= tc:
            raise ValueError(
                f"query time {query_time} must be after the current time {tc}"
            )
        if self._tree is None:
            return [self.motion_prediction(query_time)]
        if query_time - tc >= self.config.distant_threshold:
            return self.backward(query_time, k)
        return self.forward(query_time, k)

    def predict_one(self, query_time: int) -> Prediction:
        """Top-1 convenience wrapper around :meth:`predict`."""
        return self.predict(query_time, k=1)[0]

    def predict_trajectory(
        self, t_from: int, t_to: int, step: int = 1
    ) -> list[tuple[int, Prediction]]:
        """Top-1 predictions over a future time range (inclusive bounds)."""
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        if t_to < t_from:
            raise ValueError(f"empty range [{t_from}, {t_to}]")
        self.prime_sweep(t_from, t_to, step)
        return [
            (t, self.predict(t, k=1)[0]) for t in range(t_from, t_to + 1, step)
        ]

    # ------------------------------------------------------------------
    # Algorithm 2: Forward Query Processing
    # ------------------------------------------------------------------
    def forward(self, query_time: int, k: int) -> list[Prediction]:
        """FQP from the prepared premise key (no validation, like the old
        ``forward_query``)."""
        entry = self._forward_entry(query_time % self.config.period)
        if entry is None:
            return [self.motion_prediction(query_time)]
        self.stats["fqp"] += 1
        if isinstance(entry, KernelHits):
            top = entry.top(k)
        else:
            top = nsmallest(k, entry, key=_rank_key)
        return [
            Prediction(
                location=pattern.consequence.center,
                method="fqp",
                score=score,
                pattern=pattern,
            )
            for score, pattern in top
        ]

    def _forward_entry(self, offset: int):
        """Memoised per-offset FQP scoring on the active backend.

        Entries are scan scored-candidate lists or kernel
        :class:`KernelHits`; the memo holds both shapes so a mid-plan
        demotion keeps earlier kernel entries valid (their floats are
        bit-identical anyway)."""
        try:
            return self._fqp_scored[offset]
        except KeyError:
            pass
        if self._backend == "kernel":
            try:
                entry = self._forward_kernel(offset)
            except Exception:
                self._demote_kernel()
                entry = self._forward_scan(offset)
        else:
            entry = self._forward_scan(offset)
        self._store_forward(offset, entry)
        return entry

    def _forward_scan(
        self, offset: int
    ) -> list[tuple[float, TrajectoryPattern]] | None:
        query_key = self._codec.encode_query(self.recent_regions, offset)
        candidates = self._tree.search_candidates(query_key)
        if not candidates:
            return None
        rkq = self.premise_key
        score = self._scorer.score
        # Eq. 2 inline: S_p = S_r * c (same operands, same order as
        # fqp_score on already-validated unit values).
        return [
            (score(key.premise_key, rkq) * pattern.confidence, pattern)
            for pattern, key in candidates
        ]

    def _forward_kernel(self, offset: int) -> KernelHits | None:
        # Empty premise or unknown offset: search_candidates would return
        # nothing (Intersect needs common '1's on both parts).
        if self.premise_key == 0:
            return None
        pack = self._kernel.block_for_offset(offset)
        if pack is None:
            return None
        return finalize_forward(
            pack, premise_scores(pack, self._qvec), self._velocity_cap
        )

    def _store_forward(self, offset: int, entry) -> None:
        memo = self._fqp_scored
        if offset not in memo and len(memo) >= self.config.period:
            memo.pop(next(iter(memo)))
        memo[offset] = entry

    def _demote_kernel(self) -> None:
        """Fall back to the scan backend for the rest of this plan's life."""
        self._backend = "scan"
        self._kernel = None
        self._count_fallback()

    def _count_fallback(self) -> None:
        self.kernel_fallbacks += 1
        if self._metrics is not None:
            self._metrics.counter(
                "predict_kernel_fallback_total",
                help="Prepared plans demoted from the kernel to the scan backend",
            ).inc()

    # ------------------------------------------------------------------
    # cross-query batching hooks (see scorekernel.prime_plan_queries)
    # ------------------------------------------------------------------
    def fqp_prime_offset(self, query_time: int) -> int | None:
        """The offset to pre-score for ``query_time``, or ``None`` when the
        query would not take the kernel FQP path (wrong backend, BQP
        horizon, empty premise, or already memoised)."""
        if self._backend != "kernel" or self._tree is None:
            return None
        tc = self.current_time
        if not tc < query_time < tc + self.config.distant_threshold:
            return None
        if self.premise_key == 0:
            return None
        offset = query_time % self.config.period
        return None if offset in self._fqp_scored else offset

    def prime_sweep(self, t_from: int, t_to: int, step: int = 1) -> int:
        """Pre-score every FQP offset a trajectory sweep will visit in one
        kernel invocation.  A no-op on the scan backend."""
        if self._backend != "kernel":
            return 0
        tc = self.current_time
        lo = max(t_from, tc + 1)
        hi = min(t_to, tc + self.config.distant_threshold - 1)
        if lo > t_from:
            lo = t_from + -(-(lo - t_from) // step) * step
        if hi < lo:
            return 0
        return prime_plan_queries(
            ((self, t) for t in range(lo, hi + 1, step)), metrics=self._metrics
        )

    # ------------------------------------------------------------------
    # Algorithm 3: Backward Query Processing
    # ------------------------------------------------------------------
    def backward(self, query_time: int, k: int) -> list[Prediction]:
        """BQP with incremental interval enlargement over the offset index.

        The consequence mask grows monotonically with the interval, so each
        enlargement round only encodes the two *new* edge sub-ranges; once
        the interval covers a full period the mask saturates.  Candidate
        retrieval probes the tree's consequence-offset index (scan) or the
        kernel's merged bucket view instead of a fresh descent per round;
        both backends share the enlargement generator so their round
        structure cannot diverge.
        """
        for relaxation, mask in self._bqp_enlargements(query_time):
            if self._backend == "kernel":
                try:
                    top = self._backward_kernel(mask, relaxation, query_time, k)
                except Exception:
                    self._demote_kernel()
                    top = self._backward_scan(mask, relaxation, query_time, k)
            else:
                top = self._backward_scan(mask, relaxation, query_time, k)
            if top is not None:
                self.stats["bqp"] += 1
                return [
                    Prediction(
                        location=pattern.consequence.center,
                        method="bqp",
                        score=score_,
                        pattern=pattern,
                    )
                    for score_, pattern in top
                ]
        return [self.motion_prediction(query_time)]

    def _bqp_enlargements(self, query_time: int) -> Iterator[tuple[int, int]]:
        """Yield ``(relaxation, consequence_mask)`` per enlargement round,
        stopping when the interval's lower edge reaches the current time
        (Algorithm 3's loop structure, verbatim)."""
        cfg = self.config
        codec = self._codec
        tc = self.current_time
        period = cfg.period
        t_eps = cfg.time_relaxation
        full_mask = (1 << codec.consequence_length) - 1

        mask = 0
        lo = hi = 0
        i = 1
        while True:
            relaxation = i * t_eps
            new_lo = query_time - relaxation
            new_hi = query_time + relaxation
            if mask != full_mask:
                if new_hi - new_lo + 1 >= period:
                    mask = full_mask
                elif i == 1:
                    mask = codec.consequence_mask(
                        t % period for t in range(new_lo, new_hi + 1)
                    )
                else:
                    mask |= codec.consequence_mask(
                        t % period for t in range(new_lo, lo)
                    )
                    mask |= codec.consequence_mask(
                        t % period for t in range(hi + 1, new_hi + 1)
                    )
            lo, hi = new_lo, new_hi
            yield relaxation, mask
            i += 1
            if query_time - i * t_eps <= tc:
                return

    def _backward_scan(
        self, mask: int, relaxation: int, query_time: int, k: int
    ) -> list[tuple[float, TrajectoryPattern]] | None:
        candidates = self._tree.search_by_consequence(mask) if mask else []
        if not candidates:
            return None
        cfg = self.config
        period = cfg.period
        horizon = query_time - self.current_time
        # Eq. 5 inline: S_p = (S_r * min(1, d/(tq-tc)) + S_c) * c,
        # with S_c per Eq. 3 — identical operand order to
        # bqp_score/consequence_similarity.
        penalty = min(1.0, cfg.distant_threshold / horizon)
        denominator = relaxation + 1
        query_offset = query_time % period
        rkq = self.premise_key
        score = self._scorer.score
        scored = []
        for pattern, key in candidates:
            sr = score(key.premise_key, rkq)
            diff = abs(pattern.consequence_offset - query_offset) % period
            sc = max(0.0, 1.0 - min(diff, period - diff) / denominator)
            scored.append(((sr * penalty + sc) * pattern.confidence, pattern))
        return nsmallest(k, scored, key=_rank_key)

    def _backward_kernel(
        self, mask: int, relaxation: int, query_time: int, k: int
    ) -> list[tuple[float, TrajectoryPattern]] | None:
        """Vectorized Eq. 5 over the merged bucket view — the same
        elementwise operations in the same order as the scan loop, so each
        candidate's score is bit-identical."""
        pack = self._kernel.merged(mask) if mask else None
        if pack is None:
            return None
        cap = self._velocity_cap
        rows = None
        if cap is not None:
            rows = np.flatnonzero(pack.velocity_rows(cap))
            if rows.size == 0:
                return None
            if rows.size == pack.n:
                rows = None
        sr = premise_scores(pack, self._qvec)
        confidences = pack.confidences
        supports = pack.supports
        cons_offsets = pack.cons_offsets
        if rows is not None:
            sr = sr[rows]
            confidences = confidences[rows]
            supports = supports[rows]
            cons_offsets = cons_offsets[rows]
        cfg = self.config
        period = cfg.period
        horizon = query_time - self.current_time
        penalty = min(1.0, cfg.distant_threshold / horizon)
        denominator = relaxation + 1
        query_offset = query_time % period
        diff = np.abs(cons_offsets - query_offset) % period
        sc = np.maximum(0.0, 1.0 - np.minimum(diff, period - diff) / denominator)
        scores = (sr * penalty + sc) * confidences
        return KernelHits(scores, confidences, supports, rows, pack).top(k)

    # ------------------------------------------------------------------
    # motion fallback (fit-once, same degradation chain as before)
    # ------------------------------------------------------------------
    def motion_prediction(self, query_time: int) -> Prediction:
        """The "Call motion function" fallback with graceful degradation.

        The primary function and the linear understudy are each fitted at
        most once per plan; ``predict`` failures (e.g. a query time at or
        before the fitted range) still cascade down the chain per call, so
        the answer for any single query matches the unprepared path.
        """
        self.stats["motion"] += 1
        primary = self._motion_primary
        if primary is _UNSET:
            primary = self._motion_primary = self._fit(self.motion_factory)
        if primary is not None:
            try:
                return Prediction(location=primary.predict(query_time), method="motion")
            except ValueError:
                pass
        window = self._window
        if len(window) >= 2:
            linear = self._motion_linear
            if linear is _UNSET:
                linear = self._motion_linear = self._fit(LinearMotionFunction)
            if linear is not None:
                try:
                    return Prediction(
                        location=linear.predict(query_time), method="motion"
                    )
                except ValueError:
                    pass
        return Prediction(location=window[-1].point, method="motion")

    def _fit(self, factory: MotionFunctionFactory) -> MotionFunction | None:
        try:
            func = factory()
            func.fit(self._window)
            return func
        except ValueError:
            return None

    def __repr__(self) -> str:
        return (
            f"PreparedQuery(tc={self.current_time}, "
            f"regions={len(self.recent_regions)}, "
            f"premise_key={self.premise_key:#x})"
        )
