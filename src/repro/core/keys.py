"""Pattern-key encoding (Section V-A, Tables I–III).

A *pattern key* symbolises a trajectory pattern as a bitmap:

* **Region key** — frequent regions are sorted by time offset and given ids
  in that order; region ``id`` hashes to key ``2^id``.  The key length
  ``l_p`` equals the number of frequent regions.
* **Premise key** — bitwise OR of the region keys of the premise regions.
  Property 1: within a premise key, a '1' at a higher (right-to-left)
  position belongs to a region whose offset is closer to the consequence.
* **Consequence key** — the distinct time offsets appearing among pattern
  consequences are sorted and given time-ids with the same ``2^id`` hash;
  the key length equals the number of such offsets.
* **Pattern key** — "we place the consequence key first followed by the
  premise key": ``value = (consequence_key << l_p) | premise_key``.

The paper's key operations (Union/Size/Contain/Difference) are inherited
from :mod:`repro.signature.bitset`; the pattern-key-specific ``Intersect``
(common '1's on *both* the consequence and the premise parts) lives here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..signature import bitset
from .patterns import TrajectoryPattern
from .regions import FrequentRegion, RegionSet

__all__ = ["PatternKey", "KeyCodec"]


@dataclass(frozen=True, slots=True)
class PatternKey:
    """A concrete pattern key with its two-part geometry.

    ``value`` packs the consequence key above ``premise_length`` premise
    bits.  Keys from the same codec share geometry and are directly
    comparable with the operations below.
    """

    value: int
    premise_length: int
    consequence_length: int

    def __post_init__(self) -> None:
        if self.premise_length < 1:
            raise ValueError(f"premise_length must be >= 1, got {self.premise_length}")
        if self.consequence_length < 0:
            raise ValueError(
                f"consequence_length must be >= 0, got {self.consequence_length}"
            )
        if self.value < 0:
            raise ValueError(f"key value must be non-negative, got {self.value}")
        if self.value >> (self.premise_length + self.consequence_length):
            raise ValueError("key value has bits beyond its declared geometry")

    @property
    def premise_key(self) -> int:
        """The low ``premise_length`` bits (``rk``)."""
        return self.value & ((1 << self.premise_length) - 1)

    @property
    def consequence_key(self) -> int:
        """The bits above the premise part (``ck``)."""
        return self.value >> self.premise_length

    @property
    def width(self) -> int:
        """Total key width in bits."""
        return self.premise_length + self.consequence_length

    def intersects(self, other: "PatternKey") -> bool:
        """The paper's ``Intersect``: common '1's on both ck and rk parts."""
        self._check_compatible(other)
        return (
            self.consequence_key & other.consequence_key != 0
            and self.premise_key & other.premise_key != 0
        )

    def contains(self, other: "PatternKey") -> bool:
        """The paper's ``Contain`` on full key values."""
        self._check_compatible(other)
        return bitset.contain(self.value, other.value)

    def difference(self, other: "PatternKey") -> int:
        """The paper's ``Difference(self, other)`` on full key values."""
        self._check_compatible(other)
        return bitset.difference(self.value, other.value)

    def size(self) -> int:
        """The paper's ``Size`` — number of set bits."""
        return bitset.size(self.value)

    def to_bit_string(self) -> str:
        """Paper-style rendering, consequence key before premise key."""
        return bitset.to_bit_string(self.value, self.width)

    def _check_compatible(self, other: "PatternKey") -> None:
        if (
            self.premise_length != other.premise_length
            or self.consequence_length != other.consequence_length
        ):
            raise ValueError(
                "pattern keys from different codecs are not comparable "
                f"({self.premise_length}+{self.consequence_length} vs "
                f"{other.premise_length}+{other.consequence_length})"
            )


class KeyCodec:
    """Region-key and consequence-key tables for one mined pattern corpus.

    Parameters
    ----------
    regions:
        The region set; its canonical (offset, index) order defines the
        region ids (Table I).
    consequence_offsets:
        The distinct time offsets appearing among pattern consequences
        (Table II).  Usually derived via :meth:`from_patterns`.
    """

    def __init__(self, regions: RegionSet, consequence_offsets: Iterable[int]):
        if len(regions) == 0:
            raise ValueError("cannot build a codec over zero frequent regions")
        self._regions = regions
        offsets = sorted(set(consequence_offsets))
        for t in offsets:
            if not 0 <= t < regions.period:
                raise ValueError(f"consequence offset {t} outside [0, {regions.period})")
        self._offset_ids = {t: i for i, t in enumerate(offsets)}
        self._offsets = offsets

    @classmethod
    def from_patterns(
        cls, regions: RegionSet, patterns: Sequence[TrajectoryPattern]
    ) -> "KeyCodec":
        """Codec covering exactly the consequences of ``patterns``."""
        return cls(regions, (p.consequence_offset for p in patterns))

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def regions(self) -> RegionSet:
        """The region set backing the region-key table."""
        return self._regions

    @property
    def premise_length(self) -> int:
        """``l_p`` — the region-key width (one bit per frequent region)."""
        return len(self._regions)

    @property
    def consequence_length(self) -> int:
        """Consequence-key width (one bit per consequence offset)."""
        return len(self._offsets)

    @property
    def pattern_key_length(self) -> int:
        """Total pattern-key width in bits."""
        return self.premise_length + self.consequence_length

    def consequence_offsets(self) -> list[int]:
        """The consequence-key table's offsets, ascending."""
        return list(self._offsets)

    def covers(self, pattern: TrajectoryPattern) -> bool:
        """Whether this codec can encode ``pattern`` without growing."""
        try:
            for region in pattern.premise:
                self._regions.region_id(region)
            self._regions.region_id(pattern.consequence)
        except KeyError:
            return False
        return pattern.consequence_offset in self._offset_ids

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def region_key(self, region: FrequentRegion) -> int:
        """Table I's hash ``2^id`` for one region."""
        return 1 << self._regions.region_id(region)

    def premise_key(self, premise: Iterable[FrequentRegion]) -> int:
        """OR of the region keys of the premise regions."""
        key = 0
        for region in premise:
            key |= self.region_key(region)
        return key

    def consequence_key(self, offset: int) -> int | None:
        """Table II's hash for a consequence offset; ``None`` if unknown."""
        time_id = self._offset_ids.get(offset)
        return None if time_id is None else 1 << time_id

    def consequence_mask(self, offsets: Iterable[int]) -> int:
        """OR of the consequence keys of all *known* offsets in ``offsets``.

        Unknown offsets contribute nothing — BQP widens its interval until
        the mask is non-empty or the interval hits the current time.
        """
        mask = 0
        for t in offsets:
            key = self.consequence_key(t)
            if key is not None:
                mask |= key
        return mask

    def encode_pattern(self, pattern: TrajectoryPattern) -> PatternKey:
        """Pattern key of a mined trajectory pattern (Table III)."""
        ck = self.consequence_key(pattern.consequence_offset)
        if ck is None:
            raise ValueError(
                f"consequence offset {pattern.consequence_offset} not in the "
                "consequence-key table; rebuild the codec"
            )
        rk = self.premise_key(pattern.premise)
        return self._combine(ck, rk)

    def encode_values(self, patterns: Sequence[TrajectoryPattern]) -> list[int]:
        """Raw key values of many patterns at once.

        Returns ``[self.encode_pattern(p).value for p in patterns]`` without
        building intermediate :class:`PatternKey` objects: region ids and
        pre-shifted consequence keys are looked up from plain dicts, and
        premise keys are memoised per distinct premise tuple (mined corpora
        reuse each premise across many consequences).  Raises the same
        error as :meth:`encode_pattern` for unknown consequence offsets.
        """
        region_ids = {region: rid for rid, region in enumerate(self._regions)}
        shift = self.premise_length
        ck_shifted = {t: (1 << i) << shift for t, i in self._offset_ids.items()}
        premise_cache: dict[tuple[FrequentRegion, ...], int] = {}
        values: list[int] = []
        for pattern in patterns:
            premise = pattern.premise
            rk = premise_cache.get(premise)
            if rk is None:
                rk = 0
                for region in premise:
                    rid = region_ids.get(region)
                    if rid is None:
                        # Same KeyError (with label) encode_pattern raises.
                        self._regions.region_id(region)
                    rk |= 1 << rid
                premise_cache[premise] = rk
            try:
                ck = ck_shifted[pattern.consequence.offset]
            except KeyError:
                raise ValueError(
                    f"consequence offset {pattern.consequence.offset} not in "
                    "the consequence-key table; rebuild the codec"
                ) from None
            values.append(ck | rk)
        return values

    def encode_query(
        self, recent_regions: Iterable[FrequentRegion], query_offset: int
    ) -> PatternKey:
        """Query pattern key (Section V-C).

        The premise key encodes the frequent regions the object visited
        recently; the consequence key encodes ``tq mod T`` — zero when that
        offset never appears as a consequence (no FQP candidate can match).
        """
        ck = self.consequence_key(query_offset % self._regions.period) or 0
        rk = self.premise_key(recent_regions)
        return self._combine(ck, rk)

    def _combine(self, ck: int, rk: int) -> PatternKey:
        return PatternKey(
            value=(ck << self.premise_length) | rk,
            premise_length=self.premise_length,
            consequence_length=self.consequence_length,
        )

    def wrap(self, value: int) -> PatternKey:
        """View a raw stored key value through this codec's geometry."""
        return PatternKey(
            value=value,
            premise_length=self.premise_length,
            consequence_length=self.consequence_length,
        )

    # ------------------------------------------------------------------
    # presentation (the paper's tables)
    # ------------------------------------------------------------------
    def region_key_table(self) -> list[tuple[str, int, str]]:
        """Rows of Table I: (region label, region id, region key bits)."""
        return [
            (
                region.label,
                self._regions.region_id(region),
                bitset.to_bit_string(self.region_key(region), self.premise_length),
            )
            for region in self._regions
        ]

    def consequence_key_table(self) -> list[tuple[int, int, str]]:
        """Rows of Table II: (time offset, time id, consequence key bits)."""
        return [
            (
                t,
                self._offset_ids[t],
                bitset.to_bit_string(1 << self._offset_ids[t], self.consequence_length),
            )
            for t in self._offsets
        ]

    def __repr__(self) -> str:
        return (
            f"KeyCodec(premise_length={self.premise_length}, "
            f"consequence_length={self.consequence_length})"
        )
