"""Frequent regions ``R_t^j`` and their discovery (Section IV, Fig. 2).

"All locations from ``ceil(n/T)`` sub-trajectories which have the same time
offset ``t`` of ``T`` will be gathered onto one group ``G_t`` ... A
clustering method is then applied to find dense clusters ``R_t`` in each
``G_t`` ... ``R_t`` symbolizes the region inside of which the object may
often appear at time offset ``t``.  We call ``R_t`` a frequent region at
``t``.  More than one frequent region at time offset ``t`` can exist ...
we use ``R_t^j`` to represent the j-th frequent region at time offset t."
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np
from scipy.spatial import cKDTree

from ..clustering.dbscan import dbscan
from ..trajectory.point import BoundingBox, Point
from ..trajectory.trajectory import Trajectory

__all__ = [
    "FrequentRegion",
    "RegionSet",
    "discover_frequent_regions",
    "cluster_offset_group",
    "regions_from_arrays",
]


def regions_from_arrays(
    region_rows: np.ndarray,
    region_geo: np.ndarray,
    region_points: np.ndarray,
    region_sub_ids: np.ndarray,
    points_start: int = 0,
) -> list[FrequentRegion]:
    """Reconstruct :class:`FrequentRegion` objects from packed columnar blocks.

    The v2 snapshot format stores regions as four parallel blocks:
    ``region_rows`` ``(R, 4)`` int64 rows of ``(offset, index, n_points,
    n_subs)``, ``region_geo`` ``(R, 6)`` float64 rows of ``(center_x,
    center_y, min_x, min_y, max_x, max_y)``, the member points
    concatenated as ``region_points`` and the contributing sub-trajectory
    ids concatenated as ``region_sub_ids``.  Centers and bounding boxes
    are *stored*, never recomputed — a recomputation could reorder float
    accumulation and break SHA-256 state-fingerprint identity with the
    model that was saved.

    ``region_points`` may be a memory-mapped block: each region's
    ``points`` attribute becomes a zero-copy slice view starting at
    ``points_start``, so constructing a fleet's regions touches no point
    pages until a KD-tree or fingerprint actually reads them.
    """
    rows = np.asarray(region_rows).tolist()
    geo = np.asarray(region_geo).tolist()
    if len(rows) != len(geo):
        raise ValueError(
            f"region_rows has {len(rows)} rows but region_geo has {len(geo)}"
        )
    sub_ids = np.asarray(region_sub_ids).tolist()
    regions: list[FrequentRegion] = []
    cursor = points_start
    sub_cursor = 0
    for (offset, index, n_points, n_subs), (cx, cy, x0, y0, x1, y1) in zip(
        rows, geo
    ):
        points = region_points[cursor : cursor + n_points]
        cursor += n_points
        subs = tuple(sub_ids[sub_cursor : sub_cursor + n_subs])
        sub_cursor += n_subs
        regions.append(
            FrequentRegion(
                offset=offset,
                index=index,
                center=Point(cx, cy),
                points=points,
                bbox=BoundingBox(x0, y0, x1, y1),
                subtrajectory_ids=subs,
            )
        )
    return regions


@dataclass(frozen=True)
class FrequentRegion:
    """One dense cluster of an offset group.

    Attributes
    ----------
    offset:
        Time offset ``t`` within the period.
    index:
        ``j`` — the cluster's rank within its offset (discovery order).
    center:
        Cluster centroid; FQP/BQP return consequence centers as answers.
    points:
        The ``(m, 2)`` member locations.
    bbox:
        Axis-aligned bounds of the members.
    subtrajectory_ids:
        Which sub-trajectory contributed each member point.
    """

    offset: int
    index: int
    center: Point
    points: np.ndarray
    bbox: BoundingBox
    subtrajectory_ids: tuple[int, ...]

    @property
    def support(self) -> int:
        """Number of distinct sub-trajectories visiting the region."""
        return len(set(self.subtrajectory_ids))

    @property
    def label(self) -> str:
        """Paper notation, e.g. ``R_4^0``."""
        return f"R_{self.offset}^{self.index}"

    def __len__(self) -> int:
        return self.points.shape[0]

    def __str__(self) -> str:
        return self.label

    def __hash__(self) -> int:
        return hash((self.offset, self.index))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrequentRegion):
            return NotImplemented
        return self.offset == other.offset and self.index == other.index


class RegionSet:
    """All frequent regions of one object, with membership lookup.

    Regions are kept in the paper's canonical order — sorted by
    ``(offset, index)`` — which also defines the region-id assignment used
    by the key tables (Section V-A: "we sort all the frequent regions by
    the time offset associated with the regions; unique region ids are
    given to each frequent region according to the order").

    Membership of an arbitrary location uses DBSCAN's density semantics: a
    point belongs to ``R_t^j`` when it lies within ``eps`` of one of the
    region's member points.  Per-region KD-trees make this O(log m).
    """

    def __init__(
        self,
        regions: Sequence[FrequentRegion],
        period: int,
        eps: float,
        kd_trees: Mapping[int, cKDTree] | None = None,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.period = period
        self.eps = float(eps)
        self._regions = sorted(regions, key=lambda r: (r.offset, r.index))
        for r in self._regions:
            if not 0 <= r.offset < period:
                raise ValueError(
                    f"region {r.label} offset outside [0, {period})"
                )
        self._ids = {region: i for i, region in enumerate(self._regions)}
        if len(self._ids) != len(self._regions):
            raise ValueError("duplicate (offset, index) among regions")
        self._by_offset: dict[int, list[FrequentRegion]] = {}
        for region in self._regions:
            self._by_offset.setdefault(region.offset, []).append(region)
        # ``kd_trees`` lets the delta-refit path carry KD-trees over for
        # regions reused verbatim from a previous set; it is keyed by
        # id(region) so a *different* region at the same (offset, index)
        # can never pick up a stale tree.
        self._trees = {
            region: (
                kd_trees[id(region)]
                if kd_trees is not None and id(region) in kd_trees
                else cKDTree(region.points)
            )
            for region in self._regions
        }
        self._locate_cache: OrderedDict = OrderedDict()

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[FrequentRegion]:
        return iter(self._regions)

    def __getitem__(self, region_id: int) -> FrequentRegion:
        return self._regions[region_id]

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def region_id(self, region: FrequentRegion) -> int:
        """Global id of ``region`` under the canonical (offset, index) order."""
        try:
            return self._ids[region]
        except KeyError:
            raise KeyError(f"{region.label} is not part of this region set") from None

    def at_offset(self, offset: int) -> list[FrequentRegion]:
        """All frequent regions at time offset ``offset`` (may be empty)."""
        if not 0 <= offset < self.period:
            raise ValueError(f"offset {offset} outside [0, {self.period})")
        return list(self._by_offset.get(offset, ()))

    def offsets(self) -> list[int]:
        """Sorted offsets that have at least one frequent region."""
        return sorted(self._by_offset)

    def kd_tree(self, region: FrequentRegion) -> cKDTree:
        """The member KD-tree of ``region`` (for carry-over on delta refit)."""
        try:
            return self._trees[region]
        except KeyError:
            raise KeyError(f"{region.label} is not part of this region set") from None

    # LRU capacity for the locate memo.  Recent windows of live objects
    # revisit the same handful of (coordinate, offset) cells constantly —
    # serve batching, trajectory sweeps and repeated queries all hit.
    _LOCATE_CACHE_SIZE = 4096

    def locate(self, point: Point | tuple[float, float], offset: int) -> FrequentRegion | None:
        """The frequent region at ``offset`` containing ``point``, if any.

        "Containing" means within ``eps`` of a member point (density
        membership).  When several regions qualify (possible at region
        borders) the closest member wins.

        Answers are memoised in an LRU keyed on the exact coordinates and
        offset — the degenerate grid cell — so a cached answer is always
        the answer the KD-tree lookup would give.
        """
        xy = (point.x, point.y) if isinstance(point, Point) else (point[0], point[1])
        cache_key = (xy[0], xy[1], offset)
        cache = self._locate_cache
        try:
            region = cache[cache_key]
        except KeyError:
            pass
        else:
            cache.move_to_end(cache_key)
            return region
        region = self.locate_uncached(xy, offset)
        cache[cache_key] = region
        if len(cache) > self._LOCATE_CACHE_SIZE:
            cache.popitem(last=False)
        return region

    def locate_uncached(
        self, point: Point | tuple[float, float], offset: int
    ) -> FrequentRegion | None:
        """:meth:`locate` without the memo (reference implementation)."""
        candidates = self.at_offset(offset)
        if not candidates:
            return None
        xy = (point.x, point.y) if isinstance(point, Point) else (point[0], point[1])
        best: FrequentRegion | None = None
        best_dist = self.eps
        for region in candidates:
            dist, _ = self._trees[region].query(xy, k=1)
            if dist <= best_dist:
                best = region
                best_dist = dist
        return best

    def prewarm_locate(self, samples: Iterable[tuple[float, float, int]]) -> int:
        """Prime the locate memo with ``(x, y, offset)`` probes.

        The memo is derived state and deliberately dropped on pickle
        (:meth:`__getstate__`), so a freshly restored snapshot answers its
        first queries through per-region KD-tree lookups.  Warm-up paths
        (``PredictionService.from_snapshot``) replay the history tail
        through this so the steady-state working set — recent windows are
        cut from exactly those rows — is hot before traffic arrives.
        Returns the number of probes issued.
        """
        count = 0
        for x, y, offset in samples:
            self.locate((float(x), float(y)), int(offset))
            count += 1
        return count

    def __getstate__(self) -> dict:
        # The memo is derived state; ship snapshots/pickles without it.
        state = self.__dict__.copy()
        state["_locate_cache"] = OrderedDict()
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Snapshots written before the memo existed restore without it.
        self.__dict__.setdefault("_locate_cache", OrderedDict())

    def __repr__(self) -> str:
        return f"RegionSet(regions={len(self)}, period={self.period}, eps={self.eps})"


def discover_frequent_regions(
    trajectory: Trajectory,
    period: int,
    eps: float,
    min_pts: int,
) -> RegionSet:
    """Run the paper's frequent-region discovery over a training trajectory.

    For every time offset ``t`` the offset group ``G_t`` is clustered with
    DBSCAN(eps, min_pts); each resulting cluster becomes a frequent region
    ``R_t^j`` with ``j`` numbered in cluster-discovery order.

    The offset grouping is computed once over the stacked trajectory (one
    ``argsort`` instead of ``T`` full masking passes), and cluster members,
    bounding boxes and contributor ids come from array slices/reductions
    over label-sorted views.  Per-cluster centroids keep the exact
    ``points.mean(axis=0)`` reduction so the fitted regions stay
    byte-identical to the per-group reference path.
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    positions = trajectory.positions
    n = positions.shape[0]
    # Stack all offset groups at once: stable sort by offset keeps rows in
    # ascending trajectory order within each group, matching offset_group().
    row_idx = np.arange(n, dtype=np.int64)
    offsets_all = (trajectory.start_time + row_idx) % period
    group_order = np.argsort(offsets_all, kind="stable")
    group_counts = np.bincount(offsets_all, minlength=period)
    group_starts = np.concatenate(([0], np.cumsum(group_counts)[:-1]))

    regions: list[FrequentRegion] = []
    for offset in range(period):
        count = int(group_counts[offset])
        if count == 0:
            continue
        rows = group_order[group_starts[offset] : group_starts[offset] + count]
        regions.extend(
            cluster_offset_group(positions, rows, offset, period, eps, min_pts)
        )
    return RegionSet(regions, period=period, eps=eps)


def cluster_offset_group(
    positions: np.ndarray,
    rows: np.ndarray,
    offset: int,
    period: int,
    eps: float,
    min_pts: int,
) -> list[FrequentRegion]:
    """Cluster one offset group ``G_t`` into its frequent regions.

    ``rows`` are the trajectory row indices whose offset is ``offset``, in
    ascending trajectory order (as produced by the stable offset grouping
    in :func:`discover_frequent_regions`).  The delta-refit path calls
    this for dirty offsets only; the output is byte-identical to the
    regions :func:`discover_frequent_regions` would build for the offset.
    """
    count = rows.shape[0]
    group_points = positions[rows]
    group_subs = rows // period
    result = dbscan(group_points, eps=eps, min_pts=min_pts)
    if result.num_clusters == 0:
        return []
    # All cluster member lists in one stable sort of the labels:
    # noise (-1) sorts first, then each cluster's members in
    # ascending group order — the same order members(j) returns.
    labels = result.labels
    label_order = np.argsort(labels, kind="stable")
    member_counts = np.bincount(
        labels[labels >= 0], minlength=result.num_clusters
    )
    member_starts = (count - int(member_counts.sum())) + np.concatenate(
        ([0], np.cumsum(member_counts)[:-1])
    )
    regions: list[FrequentRegion] = []
    for j in range(result.num_clusters):
        member_idx = label_order[
            member_starts[j] : member_starts[j] + member_counts[j]
        ]
        points = group_points[member_idx]
        centroid = points.mean(axis=0)
        xs = points[:, 0]
        ys = points[:, 1]
        regions.append(
            FrequentRegion(
                offset=offset,
                index=j,
                center=Point(float(centroid[0]), float(centroid[1])),
                points=points,
                bbox=BoundingBox(
                    float(xs.min()), float(ys.min()),
                    float(xs.max()), float(ys.max()),
                ),
                subtrajectory_ids=tuple(group_subs[member_idx].tolist()),
            )
        )
    return regions
