"""Query explanation: expose how FQP/BQP ranked their candidates.

A predicted location is the centre of a frequent region chosen by the
similarity machinery of Section VI; debugging a surprising answer means
inspecting the candidate set, each candidate's premise-similarity
contributions (which recent regions matched, with what weights),
consequence similarity and confidence.  :func:`explain_query` runs the
same retrieval and scoring as :class:`HybridPredictor` and returns all
of it as a structured report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..signature import bitset
from ..trajectory.point import TimedPoint
from .patterns import TrajectoryPattern
from .prediction import HybridPredictor
from .similarity import (
    bqp_score,
    consequence_similarity,
    fqp_score,
    premise_similarity,
    premise_weights,
)

__all__ = ["CandidateExplanation", "QueryExplanation", "explain_query"]


@dataclass(frozen=True)
class CandidateExplanation:
    """One scored candidate with its evidence breakdown."""

    pattern: TrajectoryPattern
    score: float
    premise_similarity: float
    consequence_similarity: float | None  # None for FQP
    confidence: float
    matched_regions: tuple[str, ...]  # labels of premise regions in the query
    matched_weights: tuple[float, ...]  # their Property-1 weights within rk

    def __str__(self) -> str:
        parts = [f"{self.pattern}  S_p={self.score:.3f}"]
        parts.append(f"  S_r={self.premise_similarity:.3f}")
        if self.consequence_similarity is not None:
            parts.append(f"  S_c={self.consequence_similarity:.3f}")
        if self.matched_regions:
            matched = ", ".join(
                f"{label} (w={weight:.2f})"
                for label, weight in zip(self.matched_regions, self.matched_weights)
            )
            parts.append(f"  matched: {matched}")
        return "".join(parts)


@dataclass(frozen=True)
class QueryExplanation:
    """Full report for one predictive query."""

    method: str  # "fqp" | "bqp" | "motion"
    current_time: int
    query_time: int
    query_offset: int
    recent_regions: tuple[str, ...]
    candidates: tuple[CandidateExplanation, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        head = (
            f"{self.method.upper()} query tc={self.current_time} "
            f"tq={self.query_time} (offset {self.query_offset}); "
            f"recent regions: {list(self.recent_regions) or 'none'}"
        )
        if not self.candidates:
            return head + "\n  (no pattern candidates — motion function answers)"
        lines = [head]
        for rank, cand in enumerate(self.candidates, 1):
            lines.append(f"  #{rank} {cand}")
        return "\n".join(lines)


def explain_query(
    predictor: HybridPredictor,
    recent: Sequence[TimedPoint],
    query_time: int,
    max_candidates: int = 10,
) -> QueryExplanation:
    """Explain how the predictor would answer ``(recent, query_time)``.

    Pure inspection: does not touch the predictor's statistics.
    """
    recent = list(recent)
    if not recent:
        raise ValueError("recent movements must be non-empty")
    if max_candidates < 1:
        raise ValueError(f"max_candidates must be >= 1, got {max_candidates}")
    config = predictor.config
    tc = recent[-1].t
    if query_time <= tc:
        raise ValueError(
            f"query time {query_time} must be after the current time {tc}"
        )

    recent_regions = predictor.map_recent_to_regions(recent)
    query_key = predictor.codec.encode_query(
        recent_regions, query_time % config.period
    )
    distant = query_time - tc >= config.distant_threshold

    if not distant:
        method = "fqp"
        raw = [
            (pattern, key, None)
            for pattern, key in predictor.tree.search_candidates(query_key)
        ]
    else:
        method = "bqp"
        raw = []
        t_eps = config.time_relaxation
        i = 1
        while True:
            relaxation = i * t_eps
            offsets = {
                t % config.period
                for t in range(query_time - relaxation, query_time + relaxation + 1)
            }
            mask = predictor.codec.consequence_mask(offsets)
            found = predictor.tree.search_by_consequence(mask)
            if found:
                raw = [(p, k, relaxation) for p, k in found]
                break
            i += 1
            if query_time - i * t_eps <= tc:
                break

    candidates = []
    horizon = query_time - tc
    for pattern, key, relaxation in raw:
        sr = premise_similarity(
            key.premise_key, query_key.premise_key, config.weight_function
        )
        matched_labels, matched_weights = _matched_breakdown(
            pattern, key.premise_key, query_key.premise_key, config.weight_function
        )
        if relaxation is None:
            sc = None
            score = fqp_score(sr, pattern.confidence)
        else:
            distance = predictor._offset_distance(
                pattern.consequence_offset, query_time
            )
            sc = consequence_similarity(distance, relaxation)
            score = bqp_score(
                sr, sc, pattern.confidence, config.distant_threshold, horizon
            )
        candidates.append(
            CandidateExplanation(
                pattern=pattern,
                score=score,
                premise_similarity=sr,
                consequence_similarity=sc,
                confidence=pattern.confidence,
                matched_regions=matched_labels,
                matched_weights=matched_weights,
            )
        )
    candidates.sort(key=lambda c: (-c.score, -c.confidence, -c.pattern.support))

    return QueryExplanation(
        method=method if candidates else "motion",
        current_time=tc,
        query_time=query_time,
        query_offset=query_time % config.period,
        recent_regions=tuple(r.label for r in recent_regions),
        candidates=tuple(candidates[:max_candidates]),
    )


def _matched_breakdown(
    pattern: TrajectoryPattern, rk: int, rkq: int, weight_kind: str
) -> tuple[tuple[str, ...], tuple[float, ...]]:
    """Labels and Property-1 weights of the premise regions the query hit."""
    weights = premise_weights(bitset.size(rk), weight_kind)
    labels: list[str] = []
    matched_weights: list[float] = []
    common = rk & rkq
    # Premise regions are offset-ordered, matching the bit order of rk.
    set_bits = list(bitset.iter_set_bits(rk))
    for region, bit in zip(pattern.premise, set_bits):
        if common >> bit & 1:
            labels.append(region.label)
            matched_weights.append(weights[bitset.position_of_bit(rk, bit) - 1])
    return tuple(labels), tuple(matched_weights)
