"""SHA-256 fingerprints of fitted model state (oracle checks).

The BENCH_* benchmarks and the incremental-refit test suite prove
optimised paths safe by comparing fingerprints against a reference
engine.  :func:`fitted_state_fingerprint` covers everything a fit
produces — regions, pattern corpus, key-table geometry, and the TPT's
entry *content*.

Tree entries are hashed in a canonical sorted order, not traversal
order: an in-place-patched tree (delta refit) packs its nodes
differently from a scratch ``bulk_load`` even when it indexes the exact
same entries, and node packing is an implementation detail, not fitted
state.  (``bench_fit`` hashes entries in DFS order instead because it
compares two *bulk-loaded* trees, where the packing itself must match.)

:func:`prediction_fingerprint` is the end-to-end check: hash the full
prediction output over a grid of query windows and times.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from ..trajectory.point import TimedPoint
from .keys import KeyCodec
from .patterns import TrajectoryPattern
from .regions import RegionSet
from .tpt import TrajectoryPatternTree

__all__ = [
    "fitted_state_fingerprint",
    "model_fingerprint",
    "prediction_fingerprint",
]


def _pattern_repr(p: TrajectoryPattern) -> tuple:
    return (
        tuple(r.label for r in p.premise),
        p.consequence.label,
        p.support,
        p.confidence.hex(),
    )


def fitted_state_fingerprint(
    regions: RegionSet,
    patterns: Sequence[TrajectoryPattern],
    codec: KeyCodec | None,
    tree: TrajectoryPatternTree | None,
) -> str:
    """SHA-256 over the complete fitted state, tree entries canonicalised."""
    digest = hashlib.sha256()
    for r in regions:
        digest.update(
            repr(
                (
                    r.offset,
                    r.index,
                    r.center.x.hex(),
                    r.center.y.hex(),
                    r.points.shape,
                    r.points.dtype.str,
                    r.bbox.min_x.hex(),
                    r.bbox.min_y.hex(),
                    r.bbox.max_x.hex(),
                    r.bbox.max_y.hex(),
                    r.subtrajectory_ids,
                )
            ).encode()
        )
        digest.update(r.points.tobytes())
    for p in patterns:
        digest.update(repr(_pattern_repr(p)).encode())
    if codec is not None:
        digest.update(
            repr(
                (
                    codec.premise_length,
                    codec.consequence_length,
                    codec.consequence_offsets(),
                )
            ).encode()
        )
    if tree is not None:
        entries = sorted(
            (entry.signature, _pattern_repr(entry.payload))
            for entry in tree.all_entries()
        )
        for item in entries:
            digest.update(repr(item).encode())
    return digest.hexdigest()


def model_fingerprint(model) -> str:
    """:func:`fitted_state_fingerprint` of a fitted model's components."""
    return fitted_state_fingerprint(
        model.regions_, model.patterns_, model.codec_, model.tree_
    )


def prediction_fingerprint(
    model,
    queries: Iterable[tuple[Sequence[TimedPoint], int]],
    k: int | None = None,
) -> str:
    """SHA-256 over full prediction output for ``(recent, query_time)`` pairs."""
    digest = hashlib.sha256()
    for recent, query_time in queries:
        for p in model.predict(list(recent), query_time, k):
            digest.update(
                repr(
                    (
                        query_time,
                        p.location.x.hex(),
                        p.location.y.hex(),
                        p.method,
                        None if p.score is None else float(p.score).hex(),
                    )
                ).encode()
            )
    return digest.hexdigest()
