"""Incremental (delta) refit of a fitted model's mined state.

The paper's dynamic-data path re-mines the whole accumulated history every
time new movements arrive.  This module provides the delta equivalents
whose output is **byte-identical** to mining from scratch over the
concatenated history, at a fraction of the cost:

* :func:`delta_discover_frequent_regions` re-clusters only the *dirty*
  offsets — the ``(start_time + row) mod T`` cells that actually received
  new rows.  Offset groups are independent in DBSCAN, so regions at clean
  offsets are reused verbatim (same objects, same KD-trees).  Regions
  recomputed at a dirty offset are *interned*: when the re-clustered
  region is content-identical to the previous one at the same
  ``(offset, index)``, the old object is kept, which is what lets the
  miner and the TPT patcher detect "nothing moved here" by identity.

* :func:`delta_mine_trajectory_patterns` reproduces the exact output of
  :func:`repro.core.patterns.mine_trajectory_patterns` — same item order,
  same level-wise premise extension, same rule windows with the gap-cap
  and far-premise breaks — without re-walking the rule loop for clean
  work.  The previous corpus is premise-major (rules grouped by premise,
  in premise-enumeration order), so it is merged group-by-group against
  the new premise enumeration: a clean premise whose consequence window
  contains no changed or removed region keeps its whole old rule list by
  one ``extend``; a clean premise with some *invalid* keys in its window
  re-scores only those keys and splices the untouched old-rule runs
  around them; only premises that themselves contain a changed region
  walk their full window.  The miner therefore also knows exactly which
  rules appeared, vanished, or were re-scored, and returns that
  :class:`CorpusDelta` directly — no O(corpus) diff pass is needed.

Identity argument (see DESIGN.md §11): a clean region's visit mask is the
same integer as before (``min_support`` is absolute, and confidence is the
ratio of two such counts, so a growing transaction count never moves it),
and the enumeration order depends only on ``(offset, index)`` ids — which
interning preserves.  Hence the delta corpus equals the scratch corpus
element-wise, with unchanged patterns being the *same objects*.

:class:`StagedUpdate` packages one prepared refresh so the heavy phases
can run outside any lock; :meth:`HybridPredictionModel.commit_update`
installs it under the lock and raises :class:`StaleUpdateError` when the
model moved in between.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..signature import bitset
from ..trajectory.trajectory import Trajectory
from .patterns import PatternMiningStats, TrajectoryPattern
from .regions import FrequentRegion, RegionSet, cluster_offset_group

__all__ = [
    "StaleUpdateError",
    "RefitStats",
    "StagedUpdate",
    "CorpusDelta",
    "delta_discover_frequent_regions",
    "intern_regions",
    "delta_mine_trajectory_patterns",
    "pattern_unchanged",
    "diff_pattern_corpus",
    "CONFIDENCE_TOLERANCE",
]

# Confidence is support/premise_support — two small ints — so an unchanged
# rule recomputes to the bit-identical float.  The tolerance only guards
# against future scoring variants that accumulate differently.
CONFIDENCE_TOLERANCE = 1e-12


class StaleUpdateError(RuntimeError):
    """A staged update was prepared against state the model no longer has.

    Raised by :meth:`HybridPredictionModel.commit_update` when another
    fit/update/restore installed between ``prepare_update`` and the
    commit.  The prepared work must be discarded and re-prepared against
    the current state.
    """


@dataclass(frozen=True)
class RefitStats:
    """What one :meth:`HybridPredictionModel.update` actually did.

    Attributes
    ----------
    mode:
        ``"delta"`` (incremental path) or ``"full"`` (whole-history
        re-mine).
    fallback:
        Why a requested delta escalated to full (``"staleness"`` — the
        ``refit_full_every`` budget ran out) or ``None``.
    index:
        ``"kept"`` (no tree surgery needed), ``"patched"`` (in-place
        insert/remove), ``"rebuilt"`` (key geometry drifted — fresh codec
        and bulk load) or ``"cleared"`` (pattern-free degenerate mode).
    new_rows:
        Positions appended to the history by this update.
    dirty_offsets:
        Offsets re-clustered (== period for a full re-mine).
    changed_regions:
        Regions whose content differed from the previous fit (new,
        reshaped, or re-indexed ones; removed regions are not counted).
    patterns_added / patterns_removed / patterns_replaced / patterns_kept:
        Corpus diff against the previous state.  Replaced patterns count
        once (a remove + insert pair on a patched tree).
    """

    mode: str
    fallback: str | None
    index: str
    new_rows: int
    dirty_offsets: int
    changed_regions: int
    patterns_added: int
    patterns_removed: int
    patterns_replaced: int
    patterns_kept: int


@dataclass
class StagedUpdate:
    """One prepared model refresh, ready to be committed under the lock.

    Produced by :meth:`HybridPredictionModel.prepare_update` (the heavy
    phases: delta clustering + delta mining + corpus diff).  Holds no
    references into live mutable model state; committing is a pointer swap
    plus bounded tree surgery.
    """

    token: int
    history: Trajectory
    regions: RegionSet
    patterns: list[TrajectoryPattern]
    mining_stats: PatternMiningStats
    refit: RefitStats
    index_plan: str  # "patch" | "rebuild" | "clear"
    consequence_offsets: list[int] = field(default_factory=list)
    insert_ops: list[TrajectoryPattern] = field(default_factory=list)
    remove_ops: list[TrajectoryPattern] = field(default_factory=list)
    rebind_ops: list[tuple[TrajectoryPattern, TrajectoryPattern]] = field(
        default_factory=list
    )
    phase_seconds: dict = field(default_factory=dict)


def _region_content_equal(old: FrequentRegion, new: FrequentRegion) -> bool:
    """Whether two same-(offset, index) regions are byte-identical.

    center/bbox are deterministic reductions of ``points``, so comparing
    members and contributors suffices.
    """
    return (
        old.subtrajectory_ids == new.subtrajectory_ids
        and old.points.shape == new.points.shape
        and np.array_equal(old.points, new.points)
    )


def delta_discover_frequent_regions(
    trajectory: Trajectory,
    old_regions: RegionSet,
    dirty_offsets: Iterable[int],
    eps: float,
    min_pts: int,
) -> tuple[RegionSet, list[FrequentRegion]]:
    """Re-cluster only the dirty offsets of an extended history.

    Returns the full new :class:`RegionSet` plus the list of *changed*
    regions — regions whose content differs from the previous set at the
    same ``(offset, index)`` (including brand-new ones).  Clean-offset
    regions and content-identical recomputed regions are the *same
    objects* as in ``old_regions`` (with their KD-trees carried over), so
    downstream consumers can detect unchanged state by identity.

    Byte-identity: offset groups are disjoint, so re-running DBSCAN on the
    groups that gained rows while keeping the untouched groups' clusters
    verbatim reproduces exactly what :func:`discover_frequent_regions`
    computes over the whole history.
    """
    period = old_regions.period
    positions = trajectory.positions
    n = positions.shape[0]
    dirty = {int(o) % period for o in dirty_offsets}
    row_idx = np.arange(n, dtype=np.int64)
    offsets_all = (trajectory.start_time + row_idx) % period
    group_order = np.argsort(offsets_all, kind="stable")
    group_counts = np.bincount(offsets_all, minlength=period)
    group_starts = np.concatenate(([0], np.cumsum(group_counts)[:-1]))

    regions: list[FrequentRegion] = []
    changed: list[FrequentRegion] = []
    kd_trees: dict = {}

    def keep(region: FrequentRegion) -> None:
        regions.append(region)
        kd_trees[id(region)] = old_regions.kd_tree(region)

    for offset in range(period):
        old_here = old_regions.at_offset(offset)
        if offset not in dirty:
            for region in old_here:
                keep(region)
            continue
        count = int(group_counts[offset])
        fresh: list[FrequentRegion] = []
        if count:
            rows = group_order[group_starts[offset] : group_starts[offset] + count]
            fresh = cluster_offset_group(
                positions, rows, offset, period, eps, min_pts
            )
        old_by_index = {region.index: region for region in old_here}
        for region in fresh:
            old = old_by_index.get(region.index)
            if old is not None and _region_content_equal(old, region):
                keep(old)
            else:
                regions.append(region)
                changed.append(region)
        # Old regions whose index no longer exists simply drop out.
    return (
        RegionSet(regions, period=period, eps=eps, kd_trees=kd_trees),
        changed,
    )


def intern_regions(
    new_regions: RegionSet, old_regions: RegionSet
) -> tuple[RegionSet, list[FrequentRegion]]:
    """Replace content-identical regions of ``new_regions`` by old objects.

    Used by the *full* refit path so the corpus diff (and the TPT patcher)
    can still tell unchanged regions apart by identity even though the
    whole history was re-clustered.  Returns the interned set and the
    regions that genuinely changed.
    """
    old_by_key = {(r.offset, r.index): r for r in old_regions}
    regions: list[FrequentRegion] = []
    changed: list[FrequentRegion] = []
    kd_trees: dict = {}
    for region in new_regions:
        old = old_by_key.get((region.offset, region.index))
        if old is not None and _region_content_equal(old, region):
            regions.append(old)
            kd_trees[id(old)] = old_regions.kd_tree(old)
        else:
            regions.append(region)
            changed.append(region)
    return (
        RegionSet(
            regions,
            period=new_regions.period,
            eps=new_regions.eps,
            kd_trees=kd_trees,
        ),
        changed,
    )


@dataclass
class CorpusDelta:
    """What changed between the previous and the freshly mined corpus.

    ``inserts`` are brand-new rules (structural tree inserts), ``removes``
    are vanished rules (structural tree deletes), and ``rebinds`` are
    re-scored rules whose premise/consequence *positions* — and hence
    their encoded pattern key — did not move: the indexed entry keeps its
    signature and only its payload pointer is swapped
    (:meth:`TrajectoryPatternTree.rebind_patterns`).  ``kept`` counts
    rules returned as the previous corpus' objects.
    """

    inserts: list[TrajectoryPattern] = field(default_factory=list)
    removes: list[TrajectoryPattern] = field(default_factory=list)
    rebinds: list[tuple[TrajectoryPattern, TrajectoryPattern]] = field(
        default_factory=list
    )
    kept: int = 0

    @property
    def added(self) -> int:
        return len(self.inserts)

    @property
    def removed(self) -> int:
        return len(self.removes)

    @property
    def replaced(self) -> int:
        return len(self.rebinds)

    @property
    def empty(self) -> bool:
        return not (self.inserts or self.removes or self.rebinds)


def _group_by_premise(
    old_patterns: Sequence[TrajectoryPattern],
) -> list[tuple[tuple, tuple[FrequentRegion, ...], list[TrajectoryPattern], list[tuple]]]:
    """Split a corpus into premise-major groups, in corpus order.

    Returns ``(order_key, premise, rules, consequence_keys)`` per group
    where ``order_key = (premise_length, ((offset, index), ...))`` sorts
    groups exactly like the miner enumerates premises (level blocks, then
    generation order, which is lexicographic in the member positions).
    Consecutive runs normally share one premise tuple object; equal-keyed
    runs are merged defensively in case a producer mixed tuple instances.
    """
    groups: list = []
    prev_premise: tuple | None = None
    for pattern in old_patterns:
        premise = pattern.premise
        if premise is not prev_premise:
            prev_premise = premise
            pkey = tuple((r.offset, r.index) for r in premise)
            order_key = (len(premise), pkey)
            if groups and groups[-1][0] == order_key:
                pass  # same premise under a different tuple object
            else:
                groups.append((order_key, premise, [], []))
        _, _, rules, ckeys = groups[-1]
        rules.append(pattern)
        ckeys.append((pattern.consequence.offset, pattern.consequence.index))
    return groups


def delta_mine_trajectory_patterns(
    regions: RegionSet,
    num_subtrajectories: int,
    min_support: int,
    min_confidence: float,
    old_patterns: Sequence[TrajectoryPattern],
    old_masks: dict[FrequentRegion, int] | None,
    changed_regions: Iterable[FrequentRegion],
    max_premise_length: int = 2,
    max_premise_span: int = 2,
    max_consequence_gap: int | None = None,
    far_premise_stride: int = 5,
) -> tuple[list[TrajectoryPattern], PatternMiningStats, CorpusDelta]:
    """Mine an updated corpus, reusing everything the new data cannot move.

    ``regions`` must come from :func:`delta_discover_frequent_regions` (or
    :func:`intern_regions`): regions not listed in ``changed_regions`` are
    the same objects as in the previous fit, with identical visit masks,
    and ``old_patterns`` must be the corpus mined from that previous fit
    (premise-major, as every miner here emits).  The returned pattern list
    is element-wise identical to :func:`mine_trajectory_patterns` over
    ``regions`` — unchanged rules are returned as the previous corpus'
    objects — and the :class:`CorpusDelta` records exactly how the corpus
    moved, so no separate diff pass is needed.
    """
    changed_ids = {id(region) for region in changed_regions}
    if old_masks is None:
        old_masks = {}

    masks: dict[FrequentRegion, int] = {}
    for region in regions:
        if id(region) not in changed_ids and region in old_masks:
            masks[region] = old_masks[region]
        else:
            masks[region] = bitset.from_indices(
                sub_id
                for sub_id in set(region.subtrajectory_ids)
                if 0 <= sub_id < num_subtrajectories
            )

    frequent_items = [
        (region, mask, id(region) not in changed_ids)
        for region, mask in masks.items()
        if mask.bit_count() >= min_support
    ]
    frequent_items.sort(key=lambda rm: (rm[0].offset, rm[0].index))
    item_offsets = [region.offset for region, _, _ in frequent_items]
    item_by_key = {
        (region.offset, region.index): (region, mask)
        for region, mask, _ in frequent_items
    }

    # Invalid consequence keys: positions whose old rule scores cannot be
    # trusted — changed regions plus regions that dropped out entirely.
    new_keys = {(region.offset, region.index) for region in regions}
    invalid_keys = sorted(
        {(region.offset, region.index) for region in changed_regions}
        | {
            (region.offset, region.index)
            for region in old_masks
            if (region.offset, region.index) not in new_keys
        }
    )
    invalid_offsets = sorted({offset for offset, _ in invalid_keys})

    # Same level-wise premise extension as the full miner; a premise is
    # clean when every member region is.  (The extension itself is cheap —
    # a few thousand ANDs — so it is not delta'd.)
    premises: list[tuple[tuple[FrequentRegion, ...], int, bool]] = [
        ((region, ), mask, clean) for region, mask, clean in frequent_items
    ]
    all_premises = list(premises)
    for _level in range(2, max_premise_length + 1):
        extended: list[tuple[tuple[FrequentRegion, ...], int, bool]] = []
        for premise, mask, premise_clean in premises:
            first_offset = premise[0].offset
            last_offset = premise[-1].offset
            for region, region_mask, region_clean in frequent_items:
                if region.offset <= last_offset:
                    continue
                if region.offset - first_offset > max_premise_span:
                    break  # items sorted by offset: all later ones fail too
                joint = mask & region_mask
                if joint.bit_count() >= min_support:
                    extended.append(
                        (premise + (region,), joint, premise_clean and region_clean)
                    )
        all_premises.extend(extended)
        premises = extended
        if not premises:
            break

    # Merge the old premise-major corpus against the new premise
    # enumeration.  Both sequences advance in the same order key, so one
    # group pointer suffices; groups skipped over belong to premises that
    # are no longer frequent and their rules are removals.
    groups = _group_by_premise(old_patterns)
    num_groups = len(groups)
    gp = 0
    delta = CorpusDelta()
    inserts, removes, rebinds = delta.inserts, delta.removes, delta.rebinds
    kept = 0
    patterns: list[TrajectoryPattern] = []
    for premise, premise_mask, premise_clean in all_premises:
        order_key = (
            len(premise),
            tuple((r.offset, r.index) for r in premise),
        )
        while gp < num_groups and groups[gp][0] < order_key:
            removes.extend(groups[gp][2])
            gp += 1
        group = None
        if gp < num_groups and groups[gp][0] == order_key:
            group = groups[gp]
            gp += 1
        last_offset = premise[-1].offset
        far_eligible = (
            len(premise) == 1 and premise[0].offset % far_premise_stride == 0
        )
        if max_consequence_gap is not None and not far_eligible:
            hi_offset: int | None = last_offset + max_consequence_gap
        else:
            hi_offset = None

        if premise_clean:
            # Any invalid key inside this premise's consequence window?
            i0 = bisect_right(invalid_offsets, last_offset)
            window_dirty = i0 < len(invalid_offsets) and (
                hi_offset is None or invalid_offsets[i0] <= hi_offset
            )
            if not window_dirty:
                if group is not None:
                    rules = group[2]
                    patterns.extend(rules)
                    kept += len(rules)
                continue
            # Splice: copy old-rule runs verbatim, re-score only at the
            # invalid keys.  Old rules share the window bounds (same
            # config, same premise), so the trailing run is all-clean.
            old_premise = group[1] if group is not None else premise
            old_rules = group[2] if group is not None else []
            old_ckeys = group[3] if group is not None else []
            n_old = len(old_rules)
            premise_support = premise_mask.bit_count()
            ptr = 0
            k0 = bisect_left(invalid_keys, (last_offset + 1,))
            k1 = (
                bisect_left(invalid_keys, (hi_offset + 1,))
                if hi_offset is not None
                else len(invalid_keys)
            )
            for key in invalid_keys[k0:k1]:
                nxt = bisect_left(old_ckeys, key, ptr)
                if nxt > ptr:
                    patterns.extend(old_rules[ptr:nxt])
                    kept += nxt - ptr
                    ptr = nxt
                old_here = None
                if ptr < n_old and old_ckeys[ptr] == key:
                    old_here = old_rules[ptr]
                    ptr += 1
                item = item_by_key.get(key)
                new_here = None
                if item is not None:
                    region, region_mask = item
                    joint = premise_mask & region_mask
                    support = joint.bit_count()
                    if support >= min_support:
                        confidence = support / premise_support
                        if confidence >= min_confidence:
                            new_here = TrajectoryPattern._unchecked(
                                old_premise, region, support, confidence
                            )
                if new_here is not None:
                    patterns.append(new_here)
                    if old_here is not None:
                        rebinds.append((old_here, new_here))
                    else:
                        inserts.append(new_here)
                elif old_here is not None:
                    removes.append(old_here)
            if ptr < n_old:
                patterns.extend(old_rules[ptr:])
                kept += n_old - ptr
            continue

        # Premise contains a changed region (or is newly frequent): every
        # rule in its window is re-scored; old rules pair up by
        # consequence position for the op classification.
        old_rules = group[2] if group is not None else []
        old_ckeys = group[3] if group is not None else []
        n_old = len(old_rules)
        ptr = 0
        premise_support = premise_mask.bit_count()
        lo = bisect_right(item_offsets, last_offset)
        hi = (
            bisect_right(item_offsets, hi_offset)
            if hi_offset is not None
            else len(frequent_items)
        )
        for idx in range(lo, hi):
            region, region_mask, _region_clean = frequent_items[idx]
            key = (region.offset, region.index)
            while ptr < n_old and old_ckeys[ptr] < key:
                removes.append(old_rules[ptr])
                ptr += 1
            old_here = None
            if ptr < n_old and old_ckeys[ptr] == key:
                old_here = old_rules[ptr]
                ptr += 1
            joint = premise_mask & region_mask
            support = joint.bit_count()
            new_here = None
            if support >= min_support:
                confidence = support / premise_support
                if confidence >= min_confidence:
                    new_here = TrajectoryPattern._unchecked(
                        premise, region, support, confidence
                    )
            if new_here is not None:
                patterns.append(new_here)
                if old_here is not None:
                    rebinds.append((old_here, new_here))
                else:
                    inserts.append(new_here)
            elif old_here is not None:
                removes.append(old_here)
        removes.extend(old_rules[ptr:])
    while gp < num_groups:
        removes.extend(groups[gp][2])
        gp += 1
    delta.kept = kept

    stats = PatternMiningStats(
        num_transactions=num_subtrajectories,
        num_frequent_items=len(frequent_items),
        num_frequent_premises=len(all_premises),
        num_patterns=len(patterns),
        region_masks=masks,
    )
    return patterns, stats, delta


def pattern_unchanged(old: TrajectoryPattern, new: TrajectoryPattern) -> bool:
    """Whether a re-mined rule left its indexed entry perfectly valid.

    True only when support matches, confidence matches within
    :data:`CONFIDENCE_TOLERANCE`, and every involved region is the *same
    object* (interning guarantees identity for content-identical regions —
    an object that merely compares equal by ``(offset, index)`` may carry
    different member points, and tree payloads serve those points' centers
    as predicted locations).
    """
    if old is new:
        return True
    if old.support != new.support:
        return False
    if (
        old.confidence != new.confidence
        and abs(old.confidence - new.confidence) > CONFIDENCE_TOLERANCE
    ):
        return False
    if old.consequence is not new.consequence:
        return False
    if len(old.premise) != len(new.premise):
        return False
    return all(a is b for a, b in zip(old.premise, new.premise))


def diff_pattern_corpus(
    old_patterns: Sequence[TrajectoryPattern],
    new_patterns: list[TrajectoryPattern],
) -> tuple[list[TrajectoryPattern], list[TrajectoryPattern], int, int, int]:
    """Corpus diff for in-place TPT patching.

    Returns ``(inserts, removes, added, replaced, kept)``.  Replaced
    patterns appear in both lists (remove the stale entry, insert the
    fresh one); ``new_patterns`` is normalised in place so unchanged rules
    reference the previous corpus' objects.
    """
    old_by_identity = {
        (pattern.premise, pattern.consequence): pattern
        for pattern in old_patterns
    }
    inserts: list[TrajectoryPattern] = []
    removes: list[TrajectoryPattern] = []
    added = replaced = kept = 0
    seen: set = set()
    for i, pattern in enumerate(new_patterns):
        identity = (pattern.premise, pattern.consequence)
        seen.add(identity)
        old = old_by_identity.get(identity)
        if old is None:
            inserts.append(pattern)
            added += 1
        elif pattern_unchanged(old, pattern):
            new_patterns[i] = old
            kept += 1
        else:
            removes.append(old)
            inserts.append(pattern)
            replaced += 1
    pure_removals = [
        old
        for identity, old in old_by_identity.items()
        if identity not in seen
    ]
    removes.extend(pure_removals)
    return inserts, removes, added, replaced, kept
