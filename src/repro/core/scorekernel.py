"""Vectorized query scoring kernel over packed TPT candidate buckets.

PR 5 vectorized the *fit* pipeline; this module is the query-side
counterpart.  ``PreparedQuery`` answers FQP/BQP queries by scoring every
candidate in a consequence-offset bucket with a Python loop over
:meth:`repro.core.similarity.PremiseScorer.score`.  The kernel packs each
bucket once into numpy arrays so a query scores all candidates in a
handful of array operations — and the scan loop is kept as the
``backend="scan"`` oracle, mirroring the fit pipeline's Apriori treatment.

Packed layout (one :class:`CandidatePack` per consequence time-id)
------------------------------------------------------------------
Premises are at most ``max_premise_length`` regions, so a dense
``(n, premise_length)`` bit-matrix would be ~99% padding.  Instead each
candidate row stores its scorer table *sparsely*:

* ``bit_cols[r, j]``    — premise-bit index of the j-th table entry of row
  ``r`` (ascending bit order, exactly ``PremiseScorer.table``); padding
  columns point at bit 0.
* ``bit_weights[r, j]`` — the matching weight; padding columns carry 0.0.

With ``qvec`` the query's 0/1 premise-bit vector, the premise similarity
of every row is::

    (bit_weights * qvec[bit_cols]).cumsum(axis=1)[:, -1]

``cumsum`` accumulates each row strictly left-to-right, i.e. in ascending
bit order — the same sequential float additions the scalar scorer
performs.  Padding contributes exact ``+ 0.0`` terms, and IEEE-754
guarantees ``x + 0.0 == x`` for the non-negative partial sums that occur
here, so the result is **bit-identical** to ``PremiseScorer.score``.
(``np.dot``/``matmul`` must not be used: pairwise/BLAS summation reorders
the additions.)

Candidate-set identity
----------------------
Weights are strictly positive, so a row's premise score is ``> 0`` iff the
query premise key overlaps the candidate's — exactly the filter
``search_candidates`` applies for FQP.  BQP applies no premise filter, and
neither does the kernel's backward path.  Top-k uses ``argpartition`` plus
a stable ``lexsort`` on (score desc, confidence desc, support desc), which
reproduces ``heapq.nsmallest``'s ordering including tie stability.

Velocity partitioning (opt-in)
------------------------------
Following "Boosting Moving Object Indexing through Velocity Partitioning"
(PAPERS.md), each candidate carries the minimum average speed an object
must sustain to travel from its last premise region to its consequence
region in the pattern's time gap.  Candidates are bucketed into speed
bands (quantiles of that minimum speed); a query object whose
recent-window speed falls in a lower band cannot plausibly realize the
faster patterns, so their rows are masked out before scoring.  This is a
**pruning heuristic**, not an exact transform — it is gated behind
``HPMConfig.velocity_filter`` (default off) and ignored by the scan
oracle; all byte-identity guarantees are stated for the filter disabled.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..signature.bitset import iter_set_bits
from .similarity import PremiseScorer

__all__ = [
    "KERNEL_BATCH_BUCKETS",
    "CandidatePack",
    "KernelHits",
    "KernelUnavailable",
    "ScoreKernel",
    "finalize_forward",
    "pack_premise_tables",
    "premise_scores",
    "prime_plan_queries",
    "top_indices",
    "window_speed",
    "pattern_min_speed",
]

# Histogram buckets for predict_kernel_batch_size: the registry ignores
# ``buckets`` on an existing instrument, so every call site must pass this
# same constant.
KERNEL_BATCH_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

# Packing is refused beyond this many (row, column) cells; the plan then
# falls back to the scan backend instead of ballooning resident memory.
_MAX_CELLS = 1 << 25

# Merged multi-bucket views are memoised per consequence mask (BQP
# enlargement revisits the same masks across queries); FIFO-bounded.
_MERGED_CACHE_SIZE = 512


class KernelUnavailable(Exception):
    """The pattern corpus cannot be packed (size cap, exotic payloads,
    or weight overflow); callers fall back to the scan backend."""


class CandidatePack:
    """One consequence bucket (or merged view) in packed array form.

    Rows follow the bucket's DFS ``seq`` order — the order the scan path
    scores candidates in — so stable top-k selection ties break
    identically.
    """

    __slots__ = (
        "seqs",
        "bit_cols",
        "bit_weights",
        "confidences",
        "supports",
        "cons_offsets",
        "min_speeds",
        "patterns",
        "_velocity_rows",
    )

    def __init__(
        self,
        seqs: np.ndarray,
        bit_cols: np.ndarray,
        bit_weights: np.ndarray,
        confidences: np.ndarray,
        supports: np.ndarray,
        cons_offsets: np.ndarray,
        min_speeds: np.ndarray,
        patterns: list,
    ):
        self.seqs = seqs
        self.bit_cols = bit_cols
        self.bit_weights = bit_weights
        self.confidences = confidences
        self.supports = supports
        self.cons_offsets = cons_offsets
        self.min_speeds = min_speeds
        self.patterns = patterns
        self._velocity_rows: dict[float, np.ndarray] = {}

    @property
    def n(self) -> int:
        return len(self.patterns)

    @property
    def width(self) -> int:
        return self.bit_cols.shape[1]

    def velocity_rows(self, cap: float) -> np.ndarray:
        """Boolean row mask ``min_speeds <= cap`` (memoised per cap)."""
        mask = self._velocity_rows.get(cap)
        if mask is None:
            mask = self.min_speeds <= cap
            if len(self._velocity_rows) >= 64:
                self._velocity_rows.pop(next(iter(self._velocity_rows)))
            self._velocity_rows[cap] = mask
        return mask


def pack_premise_tables(
    premise_keys: Sequence[int], scorer: PremiseScorer, width: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Sparse (bit_cols, bit_weights) arrays for a list of premise keys.

    Row ``r`` holds ``scorer.table(premise_keys[r])`` in ascending bit
    order, padded with (col 0, weight 0.0).  Exposed separately so the
    property-test suite can exercise packing against the scalar scorer
    directly.
    """
    tables = [scorer.table(rk) for rk in premise_keys]
    if width is None:
        width = max((len(t) for t in tables), default=0)
    width = max(width, 1)
    n = len(tables)
    cols = np.zeros((n, width), dtype=np.intp)
    weights = np.zeros((n, width), dtype=np.float64)
    for r, table in enumerate(tables):
        for j, (bit, weight) in enumerate(table):
            cols[r, j] = bit
            weights[r, j] = weight
    return cols, weights


def premise_scores(pack: CandidatePack, qvec: np.ndarray) -> np.ndarray:
    """Premise similarity of every row against the query bit vector.

    Bit-identical to ``PremiseScorer.score`` per row (see module
    docstring for the accumulation-order argument).
    """
    return (pack.bit_weights * qvec[pack.bit_cols]).cumsum(axis=1)[:, -1]


def top_indices(
    scores: np.ndarray, confidences: np.ndarray, supports: np.ndarray, k: int
) -> np.ndarray:
    """Indices of the top-k rows under the scan path's ranking.

    Order: score desc, confidence desc, support desc, then original row
    order for full ties — the ordering ``nsmallest(k, ..., key=_rank_key)``
    produces over a stably-ordered candidate list.  ``argpartition``
    narrows to a candidate superset (every row tied with the k-th score
    survives) before the exact stable ``lexsort``.
    """
    n = scores.shape[0]
    if 0 < k < n:
        part = np.argpartition(-scores, k - 1)[:k]
        threshold = scores[part].min()
        cand = np.flatnonzero(scores >= threshold)
    else:
        cand = np.arange(n)
    # lexsort ranks by its *last* key first and is stable, so ties on all
    # three keys keep ascending row (bucket) order.
    order = np.lexsort((-supports[cand], -confidences[cand], -scores[cand]))
    return cand[order[:k]]


class KernelHits:
    """A scored candidate set awaiting top-k extraction.

    ``rows`` maps the (possibly filtered) score rows back into the pack's
    pattern list; ``None`` means all pack rows survived.
    """

    __slots__ = ("scores", "confidences", "supports", "rows", "pack")

    def __init__(self, scores, confidences, supports, rows, pack):
        self.scores = scores
        self.confidences = confidences
        self.supports = supports
        self.rows = rows
        self.pack = pack

    def top(self, k: int) -> list[tuple[float, object]]:
        """Top-k as (score, pattern) pairs with plain-float scores."""
        idx = top_indices(self.scores, self.confidences, self.supports, k)
        patterns = self.pack.patterns
        rows = self.rows
        if rows is None:
            return [(float(self.scores[j]), patterns[j]) for j in idx]
        return [(float(self.scores[j]), patterns[int(rows[j])]) for j in idx]


def finalize_forward(
    pack: CandidatePack, sr: np.ndarray, velocity_cap: float | None
) -> KernelHits | None:
    """FQP post-processing: keep overlapping rows, apply Eq. 2.

    ``sr > 0`` is exactly the ``premise_bits & q_rk`` filter of
    ``search_candidates`` (weights are strictly positive).  Returns
    ``None`` when no candidate survives — the scan path's "no
    candidates" answer.
    """
    keep = sr > 0.0
    if velocity_cap is not None:
        keep &= pack.velocity_rows(velocity_cap)
    rows = np.flatnonzero(keep)
    if rows.size == 0:
        return None
    if rows.size == keep.size:
        return KernelHits(
            sr * pack.confidences, pack.confidences, pack.supports, None, pack
        )
    sr = sr[rows]
    confidences = pack.confidences[rows]
    return KernelHits(
        sr * confidences, confidences, pack.supports[rows], rows, pack
    )


def pattern_min_speed(pattern) -> float:
    """Minimum average speed to realize ``pattern``: distance from the last
    premise region's center to the consequence center over the offset gap."""
    last = pattern.premise[-1]
    gap = pattern.consequence.offset - last.offset
    if gap <= 0:
        return 0.0
    c, p = pattern.consequence.center, last.center
    return math.hypot(c.x - p.x, c.y - p.y) / gap


def window_speed(window: Sequence) -> float:
    """Fastest per-step speed observed over a recent-movement window."""
    best = 0.0
    prev = None
    for sample in window:
        if prev is not None:
            dt = sample.t - prev.t
            if dt > 0:
                point, prev_point = sample.point, prev.point
                speed = (
                    math.hypot(point.x - prev_point.x, point.y - prev_point.y) / dt
                )
                if speed > best:
                    best = speed
        prev = sample
    return best


def _pack_bucket(bucket: list, scorer: PremiseScorer) -> CandidatePack:
    cols, weights = pack_premise_tables(
        [premise_bits for _seq, premise_bits, _pattern, _key in bucket], scorer
    )
    patterns = [pattern for _seq, _premise_bits, pattern, _key in bucket]
    return CandidatePack(
        seqs=np.array([seq for seq, _pb, _p, _k in bucket], dtype=np.int64),
        bit_cols=cols,
        bit_weights=weights,
        confidences=np.array([p.confidence for p in patterns], dtype=np.float64),
        supports=np.array([p.support for p in patterns], dtype=np.int64),
        cons_offsets=np.array(
            [p.consequence_offset for p in patterns], dtype=np.int64
        ),
        min_speeds=np.array([pattern_min_speed(p) for p in patterns]),
        patterns=patterns,
    )


def _merge_packs(blocks: list[CandidatePack]) -> CandidatePack:
    """Union of several buckets, deduplicated by ``seq`` and sorted by it —
    the order ``search_by_consequence`` merges multi-offset masks in."""
    seqs = np.concatenate([b.seqs for b in blocks])
    uniq_seqs, first = np.unique(seqs, return_index=True)
    width = max(b.width for b in blocks)
    total = seqs.shape[0]
    cols = np.zeros((total, width), dtype=np.intp)
    weights = np.zeros((total, width), dtype=np.float64)
    r = 0
    for b in blocks:
        cols[r : r + b.n, : b.width] = b.bit_cols
        weights[r : r + b.n, : b.width] = b.bit_weights
        r += b.n
    all_patterns = [p for b in blocks for p in b.patterns]
    return CandidatePack(
        seqs=uniq_seqs,
        bit_cols=cols[first],
        bit_weights=weights[first],
        confidences=np.concatenate([b.confidences for b in blocks])[first],
        supports=np.concatenate([b.supports for b in blocks])[first],
        cons_offsets=np.concatenate([b.cons_offsets for b in blocks])[first],
        min_speeds=np.concatenate([b.min_speeds for b in blocks])[first],
        patterns=[all_patterns[i] for i in first],
    )


class ScoreKernel:
    """Packed candidate buckets for one tree + one weight family.

    Built lazily by ``TrajectoryPatternTree.score_kernel`` from the
    consequence index and cached on the tree; it shares the index's
    invalidation contract exactly (insert/delete/bulk_load/
    rebind_patterns/expire-rebuild all drop it; ``rebind_codec`` keeps it
    since the key geometry is unchanged).  The arrays are immutable
    snapshots, safe to score outside the owning object's lock.
    """

    def __init__(
        self,
        kind: str,
        premise_length: int,
        blocks: dict[int, CandidatePack],
        offset_time_ids: dict[int, int],
    ):
        self.kind = kind
        self.premise_length = premise_length
        self._blocks = blocks
        self._offset_time_ids = offset_time_ids
        self._merged: dict[int, CandidatePack | None] = {}
        self._band_edges: dict[int, np.ndarray | None] = {}

    @classmethod
    def build(cls, tree, kind: str) -> "ScoreKernel":
        """Pack every consequence bucket of ``tree``.

        Raises :class:`KernelUnavailable` when the corpus exceeds the
        packing cap, a payload is not a trajectory pattern, or the weight
        family overflows (the scan path then raises the same overflow at
        query time, preserving behavior).
        """
        codec = tree.codec
        scorer = PremiseScorer(kind)
        blocks: dict[int, CandidatePack] = {}
        cells = 0
        try:
            for time_id, bucket in tree.consequence_index().items():
                pack = _pack_bucket(bucket, scorer)
                cells += pack.n * pack.width
                if cells > _MAX_CELLS:
                    raise KernelUnavailable(f"pattern corpus too large ({cells} cells)")
                blocks[time_id] = pack
        except (OverflowError, AttributeError, TypeError) as exc:
            raise KernelUnavailable(str(exc)) from exc
        offset_time_ids = {
            offset: time_id
            for time_id, offset in enumerate(codec.consequence_offsets())
        }
        return cls(kind, codec.premise_length, blocks, offset_time_ids)

    def export_buckets(self) -> list[tuple[int, CandidatePack]]:
        """The packed buckets in ascending consequence time-id order.

        Snapshot writers serialise these arrays verbatim; a kernel
        reconstructed from the stored blocks (same ``kind``, same
        ``premise_length``, same bucket arrays) scores byte-identically
        to one built from the tree.
        """
        return sorted(self._blocks.items())

    def block_for_offset(self, offset: int) -> CandidatePack | None:
        """The FQP bucket for a query offset, or ``None`` when that offset
        has no candidates (unknown offset or empty bucket)."""
        time_id = self._offset_time_ids.get(offset)
        if time_id is None:
            return None
        return self._blocks.get(time_id)

    def merged(self, mask: int) -> CandidatePack | None:
        """Merged view of every bucket under a BQP consequence mask."""
        try:
            return self._merged[mask]
        except KeyError:
            pass
        blocks = [
            self._blocks[time_id]
            for time_id in iter_set_bits(mask)
            if time_id in self._blocks
        ]
        if not blocks:
            pack = None
        elif len(blocks) == 1:
            pack = blocks[0]
        else:
            pack = _merge_packs(blocks)
        if len(self._merged) >= _MERGED_CACHE_SIZE:
            self._merged.pop(next(iter(self._merged)))
        self._merged[mask] = pack
        return pack

    # ------------------------------------------------------------------
    # velocity partitioning
    # ------------------------------------------------------------------
    def band_edges(self, bands: int) -> np.ndarray | None:
        """Quantile speed-band edges over all candidates (memoised)."""
        edges = self._band_edges.get(bands)
        if edges is None and bands not in self._band_edges:
            if bands < 2 or not self._blocks:
                edges = None
            else:
                speeds = np.concatenate(
                    [b.min_speeds for b in self._blocks.values()]
                )
                if speeds.size == 0:
                    edges = None
                else:
                    edges = np.quantile(
                        speeds, [i / bands for i in range(1, bands)]
                    )
            self._band_edges[bands] = edges
        return edges

    def velocity_cap(
        self, speed: float, slack: float, bands: int
    ) -> float | None:
        """Max candidate ``min_speed`` admitted for an object moving at
        ``speed``; ``None`` (no pruning) for the unbounded top band."""
        edges = self.band_edges(bands)
        if edges is None:
            return None
        band = int(np.searchsorted(edges, speed, side="right"))
        if band >= edges.size:
            return None
        return float(edges[band]) * slack


# ----------------------------------------------------------------------
# cross-plan batching
# ----------------------------------------------------------------------
def prime_plan_queries(
    pairs: Iterable[tuple[object, int]], metrics=None
) -> int:
    """Score many (plan, query_time) FQP lookups in one kernel invocation.

    Plans whose query would not take the kernel FQP path (scan backend,
    BQP horizon, empty premise, already memoised) are skipped; the rest
    have their per-offset entry computed from one stacked array pass and
    stored in the plan memo, so the subsequent ``predict`` calls are pure
    memo hits.  Identity with per-plan scoring: each plan's query vector
    occupies a disjoint column range of the concatenated ``Q``, and the
    trailing padding columns contribute exact ``+ 0.0`` terms (see module
    docstring).

    Returns the number of entries primed; failures leave the plans
    unprimed (the per-plan path recomputes and, if needed, demotes).
    """
    tasks: list[tuple[object, int, CandidatePack]] = []
    seen: set[tuple[int, int]] = set()
    for plan, query_time in pairs:
        offset = plan.fqp_prime_offset(query_time)
        if offset is None:
            continue
        key = (id(plan), offset)
        if key in seen:
            continue
        seen.add(key)
        pack = plan._kernel.block_for_offset(offset)
        if pack is None:
            plan._store_forward(offset, None)
            continue
        tasks.append((plan, offset, pack))
    if not tasks:
        return 0
    try:
        if len(tasks) == 1:
            plan, offset, pack = tasks[0]
            sr = premise_scores(pack, plan._qvec)
            plan._store_forward(
                offset, finalize_forward(pack, sr, plan._velocity_cap)
            )
        else:
            _prime_batched(tasks)
    except Exception:
        return 0
    if metrics is not None:
        metrics.histogram(
            "predict_kernel_batch_size",
            help="FQP lookups scored per kernel invocation",
            buckets=KERNEL_BATCH_BUCKETS,
        ).observe(float(len(tasks)))
    return len(tasks)


def _prime_batched(tasks: list[tuple[object, int, CandidatePack]]) -> None:
    width = max(pack.width for _plan, _offset, pack in tasks)
    total = sum(pack.n for _plan, _offset, pack in tasks)
    bases: dict[int, int] = {}
    segments: list[np.ndarray] = []
    next_base = 0
    for plan, _offset, _pack in tasks:
        if id(plan) not in bases:
            bases[id(plan)] = next_base
            segments.append(plan._qvec)
            next_base += plan._qvec.shape[0]
    q_all = np.concatenate(segments)
    cols = np.zeros((total, width), dtype=np.intp)
    weights = np.zeros((total, width), dtype=np.float64)
    spans: list[tuple[object, int, CandidatePack, int, int]] = []
    r = 0
    for plan, offset, pack in tasks:
        n, w = pack.n, pack.width
        cols[r : r + n, :w] = pack.bit_cols + bases[id(plan)]
        weights[r : r + n, :w] = pack.bit_weights
        spans.append((plan, offset, pack, r, r + n))
        r += n
    sr_all = (weights * q_all[cols]).cumsum(axis=1)[:, -1]
    for plan, offset, pack, a, b in spans:
        plan._store_forward(
            offset, finalize_forward(pack, sr_all[a:b], plan._velocity_cap)
        )
