"""Online prediction: feed fixes as they arrive, query any time.

:class:`HybridPredictor` expects the caller to assemble the
recent-movement window per query; a live tracker instead *streams* fixes.
:class:`OnlineTracker` buffers the newest window per object, forwards
queries to a fitted model, and accumulates observed day fragments so the
model can be refreshed with :meth:`flush_updates` once enough new data
has arrived (the paper's "when a certain amount of new data is
accumulated" trigger, made explicit).

Concurrency contract
--------------------
Every public method serialises on a reentrant lock, so interleaved
``observe`` / ``predict`` / ``flush_updates`` calls from multiple
threads (or an asyncio server's executor) can never corrupt the window
or observe a half-refreshed model.  When the wrapped model is shared
with a :class:`~repro.core.fleet.FleetPredictionModel`, pass
``lock=fleet.object_lock(object_id)`` so tracker and fleet serialise on
the *same* lock — otherwise each would guard the model independently
and writes could still interleave.
"""

from __future__ import annotations

import threading
from collections import deque

from ..trajectory.point import TimedPoint
from .model import HybridPredictionModel
from .prediction import Prediction

__all__ = ["OnlineTracker"]


class OnlineTracker:
    """Streaming front-end over a fitted :class:`HybridPredictionModel`.

    Parameters
    ----------
    model:
        A fitted model (its ``recent_window`` sets the buffer length).
    update_after:
        Number of buffered-but-unflushed fixes that makes
        :attr:`update_due` true; ``None`` disables the suggestion (the
        caller can still flush manually).
    lock:
        Reentrant lock guarding all tracker state *and* the model calls
        it makes.  Defaults to a private lock; pass the owning fleet's
        ``object_lock(object_id)`` when the model is shared (see the
        module docstring).
    """

    def __init__(
        self,
        model: HybridPredictionModel,
        update_after: int | None = None,
        lock: threading.RLock | None = None,
    ):
        if not model.is_fitted:
            raise ValueError("OnlineTracker needs a fitted model")
        if update_after is not None and update_after < 1:
            raise ValueError(f"update_after must be >= 1, got {update_after}")
        self.model = model
        self.update_after = update_after
        self._lock = lock if lock is not None else threading.RLock()
        self._window: deque[TimedPoint] = deque(
            maxlen=model.config.recent_window
        )
        self._pending: list[TimedPoint] = []

    # ------------------------------------------------------------------
    # streaming input
    # ------------------------------------------------------------------
    def observe(self, t: int, x: float, y: float) -> None:
        """Ingest one fix; timestamps must be strictly increasing."""
        with self._lock:
            if self._window and t <= self._window[-1].t:
                raise ValueError(
                    f"fix at t={t} is not after the last observed "
                    f"t={self._window[-1].t}"
                )
            sample = TimedPoint(t, float(x), float(y))
            self._window.append(sample)
            self._pending.append(sample)

    @property
    def current_time(self) -> int:
        """Timestamp of the newest fix."""
        with self._lock:
            if not self._window:
                raise ValueError("no fixes observed yet")
            return self._window[-1].t

    @property
    def window(self) -> list[TimedPoint]:
        """The buffered recent-movement window (oldest first)."""
        with self._lock:
            return list(self._window)

    @property
    def pending_count(self) -> int:
        """Fixes observed since the last :meth:`flush_updates`."""
        with self._lock:
            return len(self._pending)

    @property
    def update_due(self) -> bool:
        """Whether enough new data has accumulated to refresh the model."""
        with self._lock:
            return (
                self.update_after is not None
                and len(self._pending) >= self.update_after
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def predict(self, query_time: int, k: int | None = None) -> list[Prediction]:
        """Predictive query from the buffered window."""
        with self._lock:
            if not self._window:
                raise ValueError("no fixes observed yet")
            return self.model.predict(self.window, query_time, k)

    def predict_in(self, horizon: int, k: int | None = None) -> list[Prediction]:
        """Convenience: predict ``horizon`` ticks after the newest fix."""
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        return self.predict(self.current_time + horizon, k)

    # ------------------------------------------------------------------
    # model refresh
    # ------------------------------------------------------------------
    def flush_updates(self) -> int:
        """Feed the accumulated fixes into the model's dynamic-update path.

        Returns the number of fixes flushed.  Positions are appended to
        the model's history verbatim; the model re-mines and inserts or
        rebuilds as needed (see :meth:`HybridPredictionModel.update`).
        """
        with self._lock:
            if not self._pending:
                return 0
            positions = [[p.x, p.y] for p in self._pending]
            self.model.update(positions)
            flushed = len(self._pending)
            self._pending = []
            return flushed

    def __repr__(self) -> str:
        return (
            f"OnlineTracker(window={len(self._window)}/"
            f"{self._window.maxlen}, pending={len(self._pending)})"
        )
