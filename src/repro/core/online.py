"""Online prediction: feed fixes as they arrive, query any time.

:class:`HybridPredictor` expects the caller to assemble the
recent-movement window per query; a live tracker instead *streams* fixes.
:class:`OnlineTracker` buffers the newest window per object, forwards
queries to a fitted model, and accumulates observed day fragments so the
model can be refreshed with :meth:`flush_updates` once enough new data
has arrived (the paper's "when a certain amount of new data is
accumulated" trigger, made explicit).

Concurrency contract
--------------------
Every public method serialises its state access on a reentrant lock, so
interleaved ``observe`` / ``predict`` / ``flush_updates`` calls from
multiple threads (or an asyncio server's executor) can never corrupt the
window or observe a half-refreshed model.  ``flush_updates`` runs the
heavy model refresh *outside* the lock (prepare/commit split — see
:meth:`HybridPredictionModel.prepare_update`), so predictions are only
blocked for the brief state swap.  When the wrapped model is shared
with a :class:`~repro.core.fleet.FleetPredictionModel`, pass
``lock=fleet.object_lock(object_id)`` so tracker and fleet serialise on
the *same* lock — otherwise each would guard the model independently
and writes could still interleave.
"""

from __future__ import annotations

import threading
from collections import deque

from ..trajectory.point import TimedPoint
from .model import HybridPredictionModel
from .prediction import Prediction
from .refit import StaleUpdateError

__all__ = ["OnlineTracker"]

_GAP_POLICIES = ("reject", "pad")

# How many times flush_updates re-prepares after losing a commit race to a
# concurrent writer before giving up (the caller's retry/backoff — e.g.
# the serve RefitScheduler — takes over; the claimed fixes are restored).
_FLUSH_CONFLICT_RETRIES = 3


class OnlineTracker:
    """Streaming front-end over a fitted :class:`HybridPredictionModel`.

    Parameters
    ----------
    model:
        A fitted model (its ``recent_window`` sets the buffer length).
    update_after:
        Number of buffered-but-unflushed fixes that makes
        :attr:`update_due` true; ``None`` disables the suggestion (the
        caller can still flush manually).
    lock:
        Reentrant lock guarding all tracker state *and* the model calls
        it makes.  Defaults to a private lock; pass the owning fleet's
        ``object_lock(object_id)`` when the model is shared (see the
        module docstring).
    gap_policy:
        What :meth:`flush_updates` does when the accumulated fixes are not
        contiguous with the model's history (the model's dense history
        assigns ``start_time + row`` to row ``row``, so silently appending
        gapped fixes would shift every later offset's phase).  ``"reject"``
        (default) raises a :class:`ValueError` naming the discontinuity;
        ``"pad"`` fills forward gaps by repeating the last known position.
        Fixes claiming timestamps the history already covers are always
        rejected.
    refit_mode:
        Per-flush override of the model's ``config.refit_mode`` (``None``
        = use the model default).
    full_refit_every:
        Tracker-level staleness budget: force ``refit="full"`` on every
        Nth flush (``None`` = never force; the model may still fall back
        on its own ``refit_full_every``).
    """

    def __init__(
        self,
        model: HybridPredictionModel,
        update_after: int | None = None,
        lock: threading.RLock | None = None,
        gap_policy: str = "reject",
        refit_mode: str | None = None,
        full_refit_every: int | None = None,
    ):
        if not model.is_fitted:
            raise ValueError("OnlineTracker needs a fitted model")
        if update_after is not None and update_after < 1:
            raise ValueError(f"update_after must be >= 1, got {update_after}")
        if gap_policy not in _GAP_POLICIES:
            raise ValueError(
                f"gap_policy must be one of {_GAP_POLICIES}, got {gap_policy!r}"
            )
        if refit_mode is not None and refit_mode not in ("delta", "full"):
            raise ValueError(
                f"refit_mode must be 'delta', 'full' or None, got {refit_mode!r}"
            )
        if full_refit_every is not None and full_refit_every < 1:
            raise ValueError(
                f"full_refit_every must be >= 1 or None, got {full_refit_every}"
            )
        self.model = model
        self.update_after = update_after
        self.gap_policy = gap_policy
        self.refit_mode = refit_mode
        self.full_refit_every = full_refit_every
        self._flushes_since_full = 0
        self._lock = lock if lock is not None else threading.RLock()
        self._window: deque[TimedPoint] = deque(
            maxlen=model.config.recent_window
        )
        self._pending: list[TimedPoint] = []

    # ------------------------------------------------------------------
    # streaming input
    # ------------------------------------------------------------------
    def observe(self, t: int, x: float, y: float) -> None:
        """Ingest one fix; timestamps must be strictly increasing."""
        with self._lock:
            if self._window and t <= self._window[-1].t:
                raise ValueError(
                    f"fix at t={t} is not after the last observed "
                    f"t={self._window[-1].t}"
                )
            sample = TimedPoint(t, float(x), float(y))
            self._window.append(sample)
            self._pending.append(sample)

    @property
    def current_time(self) -> int:
        """Timestamp of the newest fix."""
        with self._lock:
            if not self._window:
                raise ValueError("no fixes observed yet")
            return self._window[-1].t

    @property
    def window(self) -> list[TimedPoint]:
        """The buffered recent-movement window (oldest first)."""
        with self._lock:
            return list(self._window)

    @property
    def pending_count(self) -> int:
        """Fixes observed since the last :meth:`flush_updates`."""
        with self._lock:
            return len(self._pending)

    @property
    def update_due(self) -> bool:
        """Whether enough new data has accumulated to refresh the model."""
        with self._lock:
            return (
                self.update_after is not None
                and len(self._pending) >= self.update_after
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def predict(self, query_time: int, k: int | None = None) -> list[Prediction]:
        """Predictive query from the buffered window."""
        with self._lock:
            if not self._window:
                raise ValueError("no fixes observed yet")
            return self.model.predict(self.window, query_time, k)

    def predict_in(self, horizon: int, k: int | None = None) -> list[Prediction]:
        """Convenience: predict ``horizon`` ticks after the newest fix."""
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        return self.predict(self.current_time + horizon, k)

    # ------------------------------------------------------------------
    # model refresh
    # ------------------------------------------------------------------
    def flush_updates(self) -> int:
        """Feed the accumulated fixes into the model's dynamic-update path.

        Returns the number of fixes flushed (excluding any padding rows a
        ``"pad"`` gap policy synthesised).  The heavy refresh phases run
        *outside* the lock — :meth:`HybridPredictionModel.prepare_update`
        computes the new state against a snapshot while concurrent
        ``predict``/``observe`` calls proceed, and only the cheap
        :meth:`~HybridPredictionModel.commit_update` serialises.  On any
        failure the claimed fixes are restored to the pending buffer (in
        order, ahead of fixes observed meanwhile) so a retry flushes them
        again.
        """
        for attempt in range(_FLUSH_CONFLICT_RETRIES + 1):
            with self._lock:
                if not self._pending:
                    return 0
                batch = self._pending
                self._pending = []
                try:
                    positions = self._contiguous_positions(batch)
                except Exception:
                    self._pending = batch
                    raise
                refit = self.refit_mode
                if (
                    self.full_refit_every is not None
                    and self._flushes_since_full + 1 >= self.full_refit_every
                ):
                    refit = "full"
            try:
                staged = self.model.prepare_update(positions, refit=refit)
            except Exception:
                with self._lock:
                    self._pending = batch + self._pending
                raise
            with self._lock:
                try:
                    self.model.commit_update(staged)
                except StaleUpdateError:
                    # A concurrent writer advanced the model between
                    # prepare and commit; put the fixes back and re-prepare
                    # against the new state.
                    self._pending = batch + self._pending
                    if attempt == _FLUSH_CONFLICT_RETRIES:
                        raise
                    continue
                except Exception:
                    self._pending = batch + self._pending
                    raise
                stats = self.model.last_refit_stats_
                if stats is not None and stats.mode == "full":
                    self._flushes_since_full = 0
                else:
                    self._flushes_since_full += 1
                return len(batch)
        raise AssertionError("unreachable")  # pragma: no cover

    def _contiguous_positions(self, batch: list[TimedPoint]) -> list[list[float]]:
        """Position rows for ``batch``, enforcing the gap policy.

        The model's history is dense — row ``i`` carries timestamp
        ``start_time + i`` — so the flushed rows must continue exactly at
        ``history.end_time + 1``.  Must be called under the lock (reads
        the model's history head).
        """
        history = self.model.history_
        expected = history.end_time + 1
        if batch[0].t < expected:
            raise ValueError(
                f"fix at t={batch[0].t} overlaps the model history "
                f"(already covers up to t={history.end_time}); refusing to "
                "rewrite observed movements"
            )
        rows: list[list[float]] = []
        prev_t = expected - 1
        last = history.positions[-1]
        prev_xy = [float(last[0]), float(last[1])]
        for sample in batch:
            gap = sample.t - prev_t - 1
            if gap > 0:
                if self.gap_policy == "reject":
                    raise ValueError(
                        f"gap of {gap} missing fixes before t={sample.t} "
                        f"(expected t={prev_t + 1}); appending as-is would "
                        "shift the model's period phase — backfill the gap "
                        "or use gap_policy='pad'"
                    )
                rows.extend([prev_xy] * gap)
            prev_xy = [sample.x, sample.y]
            rows.append(prev_xy)
            prev_t = sample.t
        return rows

    def __repr__(self) -> str:
        return (
            f"OnlineTracker(window={len(self._window)}/"
            f"{self._window.maxlen}, pending={len(self._pending)})"
        )
