"""Fan-out machinery for fleet-scale parallel work.

Offline training is embarrassingly parallel: one DBSCAN + Apriori pass
per object, no shared state until the fitted model is installed.  This
module owns the ``concurrent.futures`` plumbing that
:class:`~repro.core.fleet.FleetPredictionModel` (parallel ``fit`` /
``predict_all``) and :func:`~repro.core.persistence.load_fleet` fan
keyed tasks out over:

* ``"process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`;
  the task function must be a picklable module-level callable and every
  argument/result must survive a pickle round-trip.  This is the mode
  that actually beats the GIL for pure-Python mining work.
* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`;
  works everywhere (no fork, closures allowed) and still overlaps any
  GIL-releasing work (numpy, compression, I/O).
* ``"serial"`` — run inline in submission order.  This is the reference
  behaviour the parallel modes must reproduce exactly; it is also the
  automatic fallback for one-task batches and ``max_workers <= 1``.

Tasks are failure-isolated: one raising task never poisons the pool or
masks the other results.  Failures are collected per key and returned
alongside the successes so the caller decides the error policy
(:class:`~repro.core.fleet.FleetFitError` collects them for training;
``predict_all`` re-raises the first in input order to match serial
semantics).
"""

from __future__ import annotations

from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from typing import Any, Callable, Iterable, Sequence

__all__ = ["EXECUTOR_KINDS", "run_keyed_tasks"]

EXECUTOR_KINDS = ("process", "thread", "serial")

ProgressHook = Callable[[Any, int, int], None]


def _effective_workers(max_workers: int | None, num_tasks: int) -> int:
    """Worker count actually worth spinning up for ``num_tasks`` tasks."""
    if max_workers is None:
        return 1
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    return min(max_workers, num_tasks)


def _make_pool(executor: str, workers: int) -> Executor:
    if executor == "process":
        return ProcessPoolExecutor(max_workers=workers)
    return ThreadPoolExecutor(max_workers=workers)


def run_keyed_tasks(
    fn: Callable[..., Any],
    jobs: Iterable[tuple[Any, Sequence[Any]]],
    *,
    max_workers: int | None = None,
    executor: str = "process",
    progress: ProgressHook | None = None,
) -> tuple[dict[Any, Any], dict[Any, BaseException]]:
    """Run ``fn(*args)`` for every ``(key, args)`` job; collect by key.

    Returns ``(results, failures)``.  ``results`` preserves the job
    submission order regardless of completion order, so downstream
    installs are deterministic; ``failures`` maps each failed key to the
    exception its task raised.  ``progress`` (if given) is called as
    ``progress(key, completed_so_far, total)`` after every task settles,
    successful or not.
    """
    if executor not in EXECUTOR_KINDS:
        raise ValueError(
            f"executor must be one of {EXECUTOR_KINDS}, got {executor!r}"
        )
    jobs = list(jobs)
    total = len(jobs)
    results: dict[Any, Any] = {}
    failures: dict[Any, BaseException] = {}
    workers = _effective_workers(max_workers, total)

    if executor == "serial" or workers <= 1 or total <= 1:
        for done, (key, args) in enumerate(jobs, 1):
            try:
                results[key] = fn(*args)
            except Exception as exc:
                failures[key] = exc
            if progress is not None:
                progress(key, done, total)
        return results, failures

    with _make_pool(executor, workers) as pool:
        pending = {pool.submit(fn, *args): key for key, args in jobs}
        done = 0
        for future in as_completed(pending):
            key = pending[future]
            done += 1
            try:
                results[key] = future.result()
            except Exception as exc:
                failures[key] = exc
            if progress is not None:
                progress(key, done, total)

    ordered = {key: results[key] for key, _ in jobs if key in results}
    return ordered, failures
