"""Multi-object management: one HPM per moving object.

The paper's model is per-object ("an object's trajectory patterns"), but
any deployment — a taxi fleet, a herd, an airline — tracks many objects
at once.  :class:`FleetPredictionModel` manages a collection of
independent :class:`~repro.core.model.HybridPredictionModel` instances
behind one fit/update/predict interface keyed by object id, with shared
configuration, aggregate introspection, and a parallel offline-training
pipeline (``fit(histories, max_workers=N)``) that fans per-object fit
tasks out over a process pool.

Concurrency contract
--------------------
The fleet is safe for concurrent use from multiple threads (and from an
asyncio server dispatching model passes to an executor):

* the object registry (add/drop/lookup, length, membership, summaries)
  serialises on an internal registry lock; read paths snapshot under it,
  so a concurrent ``drop_object`` can never make ``summary()`` or
  iteration raise;
* every per-object operation — ``fit_object``, ``update_object``,
  ``predict``, ``predict_all`` — holds that object's reentrant lock.
  ``fit_object`` fits *and* installs under the lock, so two concurrent
  refits of the same object serialise and a staler model can never
  overwrite a fresher one; refits of different objects still run fully
  in parallel;
* :meth:`object_lock` exposes the per-object lock so collaborators that
  reach the model directly (e.g. an :class:`~repro.core.online.OnlineTracker`
  wrapping ``fleet[object_id]``) can serialise on the *same* lock.  It
  raises :class:`KeyError` for unregistered ids — lock entries exist
  exactly for registered objects, so misbehaving clients querying random
  ids cannot grow the lock table;
* batch training (:meth:`fit`) fits each object's model *outside* the
  locks — worker processes own private state — and installs the finished
  models atomically via :meth:`adopt_object`.

Operations on different objects run fully in parallel.
"""

from __future__ import annotations

import threading
import time
from pickle import dumps as _pickle_dumps, loads as _pickle_loads
from typing import Callable, Mapping, Sequence

import numpy as np

from ..motion.base import MotionFunctionFactory
from ..trajectory.point import TimedPoint
from ..trajectory.trajectory import Trajectory
from .config import HPMConfig
from .model import HybridPredictionModel
from .parallel import run_keyed_tasks
from .prediction import Prediction, default_motion_factory
from .scorekernel import prime_plan_queries
from .refit import StaleUpdateError

__all__ = ["FleetFitError", "FleetPredictionModel"]


class FleetFitError(RuntimeError):
    """One or more per-object fits failed.

    Raised by :meth:`FleetPredictionModel.fit` *after* every object that
    fitted cleanly has been installed — a single bad trajectory names
    itself here instead of poisoning the whole batch.  :attr:`failures`
    maps each failed object id to the exception its fit task raised.
    """

    def __init__(self, failures: Mapping[str, BaseException]):
        self.failures: dict[str, BaseException] = dict(failures)
        detail = "; ".join(
            f"{object_id!r}: {type(exc).__name__}: {exc}"
            for object_id, exc in sorted(self.failures.items())
        )
        super().__init__(
            f"fit failed for {len(self.failures)} object(s): {detail}"
        )


def _fit_fleet_object(
    config: HPMConfig,
    motion_factory: MotionFunctionFactory,
    trajectory: Trajectory,
) -> tuple[HybridPredictionModel, float]:
    """Fit one object's model; picklable task for the training pool.

    Returns the fitted model and its fit wall-time so the parent can
    feed the ``fleet_fit_seconds`` histogram even for process workers.
    """
    start = time.perf_counter()
    model = HybridPredictionModel(config, motion_factory)
    model.fit(trajectory)
    return model, time.perf_counter() - start


def _predict_one_pickled(
    model_blob: bytes, recent: list[TimedPoint], query_time: int
) -> Prediction:
    """Top-1 prediction on a serialised model; process-pool scoring task."""
    model: HybridPredictionModel = _pickle_loads(model_blob)
    return model.predict_one(recent, query_time)


class FleetPredictionModel:
    """A keyed collection of per-object Hybrid Prediction Models.

    Parameters
    ----------
    config:
        Shared configuration for every object's model.
    motion_factory:
        Shared fallback motion-function factory.  Must be picklable (the
        default is) for process-parallel training; pass
        ``executor="thread"`` to :meth:`fit` otherwise.
    """

    def __init__(
        self,
        config: HPMConfig | None = None,
        motion_factory: MotionFunctionFactory = default_motion_factory,
        **overrides,
    ):
        if config is None:
            config = HPMConfig(**overrides)
        elif overrides:
            config = config.with_overrides(**overrides)
        self.config = config
        self.motion_factory = motion_factory
        self._models: dict[str, HybridPredictionModel] = {}
        self._registry_lock = threading.RLock()
        self._object_locks: dict[str, threading.RLock] = {}
        self._metrics = None

    # ------------------------------------------------------------------
    # concurrency / telemetry
    # ------------------------------------------------------------------
    def object_lock(self, object_id: str) -> threading.RLock:
        """The reentrant lock guarding ``object_id``'s model.

        Collaborators that touch ``fleet[object_id]`` outside the
        fleet's own methods must hold this lock (see the module
        docstring's concurrency contract).  Raises :class:`KeyError` for
        ids that are not registered: lock entries are created only when
        a model is installed, never minted for arbitrary lookups.
        """
        with self._registry_lock:
            if object_id not in self._models:
                raise KeyError(f"unknown object {object_id!r}")
            lock = self._object_locks.get(object_id)
            if lock is None:  # registered before locks existed (unpickled)
                lock = self._object_locks[object_id] = threading.RLock()
            return lock

    def _lock_for_install(self, object_id: str) -> threading.RLock:
        """Per-object lock for install paths, created if absent.

        Unlike :meth:`object_lock` this may run for a not-yet-registered
        id; callers must either install a model or discard the entry via
        :meth:`_discard_unused_lock` on failure.
        """
        with self._registry_lock:
            lock = self._object_locks.get(object_id)
            if lock is None:
                lock = self._object_locks[object_id] = threading.RLock()
            return lock

    def _discard_unused_lock(self, object_id: str) -> None:
        """Drop a lock entry minted for an install that never happened."""
        with self._registry_lock:
            if object_id not in self._models:
                self._object_locks.pop(object_id, None)

    def bind_metrics(self, registry) -> None:
        """Instrument every current and future per-object model.

        See :meth:`HybridPredictionModel.bind_metrics`; additionally
        counts fleet-level queries as ``fleet_predict_total`` and
        training as ``fleet_fit_objects_total`` / ``fleet_fit_seconds``.
        """
        with self._registry_lock:
            self._metrics = registry
            for model in self._models.values():
                model.bind_metrics(registry)

    def _observe_fit(
        self, seconds: float, phases: Mapping[str, float] | None = None
    ) -> None:
        if self._metrics is not None:
            self._metrics.counter("fleet_fit_objects_total").inc()
            self._metrics.histogram("fleet_fit_seconds").observe(seconds)
            # Phase breakdown for models fitted in detached workers (the
            # worker had no registry bound, so the model could not observe
            # its own fit_phase_seconds_* samples).
            if phases:
                for phase, phase_seconds in phases.items():
                    self._metrics.histogram(
                        f"fit_phase_seconds_{phase}"
                    ).observe(phase_seconds)

    def fit_phase_totals(self) -> dict[str, float]:
        """Summed per-phase fit seconds across all tracked models.

        Aggregates :attr:`HybridPredictionModel.fit_phase_seconds_`
        (cluster / mine / index) over the fleet; objects restored from
        pre-phase-timing snapshots contribute nothing.
        """
        totals: dict[str, float] = {}
        with self._registry_lock:
            models = list(self._models.values())
        for model in models:
            for phase, seconds in model.fit_phase_seconds_.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return totals

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._registry_lock:
            return len(self._models)

    def __contains__(self, object_id: str) -> bool:
        with self._registry_lock:
            return object_id in self._models

    def object_ids(self) -> list[str]:
        """Tracked object ids, sorted."""
        with self._registry_lock:
            return sorted(self._models)

    def __getitem__(self, object_id: str) -> HybridPredictionModel:
        with self._registry_lock:
            try:
                return self._models[object_id]
            except KeyError:
                raise KeyError(f"unknown object {object_id!r}") from None

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(
        self,
        histories: Mapping[str, Trajectory],
        max_workers: int | None = None,
        executor: str = "process",
        progress: Callable[[str, int, int], None] | None = None,
    ) -> "FleetPredictionModel":
        """Fit (or refit) one model per object history.

        With ``max_workers`` > 1 the per-object fit tasks fan out over a
        ``concurrent.futures`` pool: ``executor="process"`` (default)
        sidesteps the GIL for the pure-Python mining work and requires
        the config/trajectories/fitted models to be picklable (they
        are); ``executor="thread"`` is the fallback for platforms
        without cheap fork or for unpicklable motion factories;
        ``executor="serial"`` forces the inline path.  Results are
        deterministic and identical to a serial fit regardless of mode:
        every object's model depends only on its own ``(config,
        trajectory)`` pair, and installs happen in ``histories`` order.

        Failures are isolated per object: every history that fits
        cleanly is installed via :meth:`adopt_object`, then a
        :class:`FleetFitError` naming the bad objects is raised if there
        were any.  ``progress`` (if given) is called as
        ``progress(object_id, completed, total)`` after each fit task
        settles.
        """
        if not histories:
            raise ValueError("no object histories supplied")
        jobs = [
            (object_id, (self.config, self.motion_factory, trajectory))
            for object_id, trajectory in histories.items()
        ]
        results, failures = run_keyed_tasks(
            _fit_fleet_object,
            jobs,
            max_workers=max_workers,
            executor=executor,
            progress=progress,
        )
        for object_id, (model, seconds) in results.items():
            self.adopt_object(object_id, model)
            self._observe_fit(seconds, model.fit_phase_seconds_)
        if failures:
            raise FleetFitError(failures)
        return self

    def fit_object(self, object_id: str, trajectory: Trajectory) -> HybridPredictionModel:
        """Fit (or refit) a single object's model and return it.

        The fit runs under the object's lock, so concurrent refits of
        the *same* object serialise — the model installed last is the
        one whose fit ran last, never a staler one that merely finished
        later.  Different objects still fit fully in parallel.
        """
        lock = self._lock_for_install(object_id)
        with lock:
            model = HybridPredictionModel(self.config, self.motion_factory)
            if self._metrics is not None:
                model.bind_metrics(self._metrics)
            start = time.perf_counter()
            try:
                model.fit(trajectory)
            except BaseException:
                self._discard_unused_lock(object_id)
                raise
            self._install(object_id, model, lock)
            self._observe_fit(time.perf_counter() - start)
        return model

    def adopt_object(
        self, object_id: str, model: HybridPredictionModel
    ) -> HybridPredictionModel:
        """Install an externally fitted model (e.g. loaded from disk)."""
        if not model.is_fitted:
            raise ValueError(f"cannot adopt unfitted model for {object_id!r}")
        if self._metrics is not None:
            model.bind_metrics(self._metrics)
        lock = self._lock_for_install(object_id)
        with lock:
            self._install(object_id, model, lock)
        return model

    def _install(
        self, object_id: str, model: HybridPredictionModel, lock: threading.RLock
    ) -> None:
        """Register a fitted model, re-binding its lock entry.

        ``setdefault`` restores the entry if a concurrent ``drop_object``
        removed it between lock acquisition and install, preserving the
        invariant that every registered object has a lock.
        """
        with self._registry_lock:
            self._models[object_id] = model
            self._object_locks.setdefault(object_id, lock)

    def update_object(
        self,
        object_id: str,
        new_positions: np.ndarray | Sequence[Sequence[float]],
        refit: str | None = None,
    ) -> HybridPredictionModel:
        """Stream new movements into one object's model.

        The heavy refresh phases run outside the object lock (concurrent
        ``predict`` calls against the same object proceed meanwhile); only
        the final state swap serialises.  If another writer lands between
        prepare and commit the refresh is re-prepared against the new
        state, falling back to a fully-locked update after repeated
        conflicts.  ``refit`` overrides the model's configured refit mode
        (``"delta"``/``"full"``; ``None`` = model default).
        """
        for _attempt in range(3):
            with self.object_lock(object_id):
                model = self[object_id]
            staged = model.prepare_update(new_positions, refit=refit)
            with self.object_lock(object_id):
                if self[object_id] is not model:
                    continue  # model swapped (fit_object/adopt) — redo
                try:
                    model.commit_update(staged)
                    return model
                except StaleUpdateError:
                    continue
        with self.object_lock(object_id):
            model = self[object_id]
            model.update(new_positions, refit=refit)
            return model

    def drop_object(self, object_id: str) -> None:
        """Stop tracking an object."""
        with self._registry_lock:
            if object_id not in self._models:
                raise KeyError(f"unknown object {object_id!r}")
            del self._models[object_id]
            self._object_locks.pop(object_id, None)

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict(
        self,
        object_id: str,
        recent: Sequence[TimedPoint],
        query_time: int,
        k: int | None = None,
    ) -> list[Prediction]:
        """Predictive query against one object's model."""
        with self.object_lock(object_id):
            predictions = self[object_id].predict(recent, query_time, k)
        if self._metrics is not None:
            self._metrics.counter("fleet_predict_total").inc()
        return predictions

    def predict_trajectory(
        self,
        object_id: str,
        recent: Sequence[TimedPoint],
        t_from: int,
        t_to: int,
        step: int = 1,
    ) -> list[tuple[int, Prediction]]:
        """Top-1 trajectory sweep against one object's model.

        All timestamps share one prepared query plan (see
        :meth:`HybridPredictionModel.prepare`), so the per-window work is
        paid once per sweep rather than once per timestamp.  Counts one
        ``fleet_predict_total`` per answered timestamp.
        """
        with self.object_lock(object_id):
            results = self[object_id].predict_trajectory(
                recent, t_from, t_to, step
            )
        if self._metrics is not None:
            self._metrics.counter("fleet_predict_total").inc(len(results))
        return results

    def predict_all(
        self,
        recents: Mapping[str, Sequence[TimedPoint]],
        query_time: int,
        max_workers: int | None = None,
        executor: str = "thread",
    ) -> dict[str, Prediction]:
        """Top-1 prediction for every supplied object at one query time.

        Objects missing from ``recents`` are skipped; unknown ids raise
        :class:`KeyError`.  With ``max_workers`` > 1 the per-object
        model passes fan out over a pool: ``executor="thread"``
        (default) scores the live models under their locks;
        ``executor="process"`` snapshots each model (pickled under its
        lock) and scores the copies in worker processes — higher
        throughput for large fleets at the price of shipping the models,
        and model-level metrics are not incremented by the worker-side
        copies.  Results are identical to serial scoring in every mode.

        On the kernel query backend the serial path batches all objects'
        FQP lookups into one kernel invocation (see
        :mod:`repro.core.scorekernel`): plans are built per object under
        that object's lock, scored together against immutable pack
        snapshots, then answered under the locks again — same answers,
        one array pass instead of ``n`` scoring loops.
        """
        items = list(recents.items())
        serial = (
            executor == "serial"
            or max_workers is None
            or max_workers <= 1
            or len(items) <= 1
        )
        if serial:
            if len(items) > 1 and self.config.query_backend == "kernel":
                return self._predict_all_batched(items, query_time)
            out: dict[str, Prediction] = {}
            for object_id, recent in items:
                with self.object_lock(object_id):
                    out[object_id] = self[object_id].predict_one(
                        list(recent), query_time
                    )
            return out

        if executor == "process":
            # Snapshot every model under its lock so a concurrent
            # in-place update can never be pickled halfway.
            jobs = []
            for object_id, recent in items:
                with self.object_lock(object_id):
                    blob = _pickle_dumps(self[object_id])
                jobs.append((object_id, (blob, list(recent), query_time)))
            results, failures = run_keyed_tasks(
                _predict_one_pickled,
                jobs,
                max_workers=max_workers,
                executor="process",
            )
        else:

            def score(object_id: str, recent) -> Prediction:
                with self.object_lock(object_id):
                    return self[object_id].predict_one(list(recent), query_time)

            results, failures = run_keyed_tasks(
                score,
                [(object_id, (object_id, recent)) for object_id, recent in items],
                max_workers=max_workers,
                executor="thread",
            )
        if failures:
            # Mirror serial semantics: surface the first failure in
            # input order (the one the serial loop would have hit).
            for object_id, _ in items:
                if object_id in failures:
                    raise failures[object_id]
        return results

    def _predict_all_batched(
        self, items: list, query_time: int
    ) -> dict[str, Prediction]:
        """Serial ``predict_all`` with cross-object kernel batching.

        Three phases: (1) build each object's prepared plan under its
        lock (the plan snapshots the tree's packed kernel arrays there);
        (2) prime every plan's FQP entry in one stacked kernel invocation
        outside the locks — the packs are immutable snapshots, so a
        concurrent refit cannot be scored mid-patch; (3) answer each
        query under the object's lock again, hitting the primed memo.
        Answers (and model-level metrics) match the per-object loop;
        plan-build errors surface in input order, as the serial loop's
        would.
        """
        prepared = []
        for object_id, recent in items:
            with self.object_lock(object_id):
                model = self[object_id]
                prepared.append((object_id, model, model.prepare(list(recent))))
        prime_plan_queries(
            ((plan, query_time) for _oid, _model, plan in prepared),
            metrics=self._metrics,
        )
        out: dict[str, Prediction] = {}
        for object_id, model, plan in prepared:
            with self.object_lock(object_id):
                out[object_id] = model.predict_prepared(plan, query_time, k=1)[0]
        return out

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def total_patterns(self) -> int:
        """Sum of pattern-corpus sizes across the fleet."""
        with self._registry_lock:
            models = list(self._models.values())
        return sum(m.pattern_count for m in models)

    def summary(self) -> list[dict]:
        """One row per object: regions, patterns, history length."""
        with self._registry_lock:
            snapshot = sorted(self._models.items())
        rows = []
        for object_id, model in snapshot:
            rows.append(
                {
                    "object_id": object_id,
                    "history_length": len(model.history_),
                    "num_regions": len(model.regions_),
                    "num_patterns": model.pattern_count,
                }
            )
        return rows

    def __repr__(self) -> str:
        return f"FleetPredictionModel(objects={len(self)}, period={self.config.period})"
