"""Multi-object management: one HPM per moving object.

The paper's model is per-object ("an object's trajectory patterns"), but
any deployment — a taxi fleet, a herd, an airline — tracks many objects
at once.  :class:`FleetPredictionModel` manages a collection of
independent :class:`~repro.core.model.HybridPredictionModel` instances
behind one fit/update/predict interface keyed by object id, with shared
configuration and aggregate introspection.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from ..motion.base import MotionFunctionFactory
from ..trajectory.point import TimedPoint
from ..trajectory.trajectory import Trajectory
from .config import HPMConfig
from .model import HybridPredictionModel
from .prediction import Prediction, default_motion_factory

__all__ = ["FleetPredictionModel"]


class FleetPredictionModel:
    """A keyed collection of per-object Hybrid Prediction Models.

    Parameters
    ----------
    config:
        Shared configuration for every object's model.
    motion_factory:
        Shared fallback motion-function factory.
    """

    def __init__(
        self,
        config: HPMConfig | None = None,
        motion_factory: MotionFunctionFactory = default_motion_factory,
        **overrides,
    ):
        if config is None:
            config = HPMConfig(**overrides)
        elif overrides:
            config = config.with_overrides(**overrides)
        self.config = config
        self.motion_factory = motion_factory
        self._models: dict[str, HybridPredictionModel] = {}

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._models)

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._models

    def object_ids(self) -> list[str]:
        """Tracked object ids, sorted."""
        return sorted(self._models)

    def __getitem__(self, object_id: str) -> HybridPredictionModel:
        try:
            return self._models[object_id]
        except KeyError:
            raise KeyError(f"unknown object {object_id!r}") from None

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, histories: Mapping[str, Trajectory]) -> "FleetPredictionModel":
        """Fit (or refit) one model per object history."""
        if not histories:
            raise ValueError("no object histories supplied")
        for object_id, trajectory in histories.items():
            model = HybridPredictionModel(self.config, self.motion_factory)
            model.fit(trajectory)
            self._models[object_id] = model
        return self

    def fit_object(self, object_id: str, trajectory: Trajectory) -> HybridPredictionModel:
        """Fit (or refit) a single object's model and return it."""
        model = HybridPredictionModel(self.config, self.motion_factory)
        model.fit(trajectory)
        self._models[object_id] = model
        return model

    def update_object(
        self, object_id: str, new_positions: np.ndarray | Sequence[Sequence[float]]
    ) -> HybridPredictionModel:
        """Stream new movements into one object's model."""
        model = self[object_id]
        model.update(new_positions)
        return model

    def drop_object(self, object_id: str) -> None:
        """Stop tracking an object."""
        if object_id not in self._models:
            raise KeyError(f"unknown object {object_id!r}")
        del self._models[object_id]

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict(
        self,
        object_id: str,
        recent: Sequence[TimedPoint],
        query_time: int,
        k: int | None = None,
    ) -> list[Prediction]:
        """Predictive query against one object's model."""
        return self[object_id].predict(recent, query_time, k)

    def predict_all(
        self,
        recents: Mapping[str, Sequence[TimedPoint]],
        query_time: int,
    ) -> dict[str, Prediction]:
        """Top-1 prediction for every supplied object at one query time.

        Objects missing from ``recents`` are skipped; unknown ids raise.
        """
        return {
            object_id: self[object_id].predict_one(list(recent), query_time)
            for object_id, recent in recents.items()
        }

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def total_patterns(self) -> int:
        """Sum of pattern-corpus sizes across the fleet."""
        return sum(m.pattern_count for m in self._models.values())

    def summary(self) -> list[dict]:
        """One row per object: regions, patterns, history length."""
        rows = []
        for object_id in self.object_ids():
            model = self._models[object_id]
            rows.append(
                {
                    "object_id": object_id,
                    "history_length": len(model.history_),
                    "num_regions": len(model.regions_),
                    "num_patterns": model.pattern_count,
                }
            )
        return rows

    def __repr__(self) -> str:
        return f"FleetPredictionModel(objects={len(self)}, period={self.config.period})"
