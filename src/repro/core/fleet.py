"""Multi-object management: one HPM per moving object.

The paper's model is per-object ("an object's trajectory patterns"), but
any deployment — a taxi fleet, a herd, an airline — tracks many objects
at once.  :class:`FleetPredictionModel` manages a collection of
independent :class:`~repro.core.model.HybridPredictionModel` instances
behind one fit/update/predict interface keyed by object id, with shared
configuration and aggregate introspection.

Concurrency contract
--------------------
The fleet is safe for concurrent use from multiple threads (and from an
asyncio server dispatching model passes to an executor):

* the object registry (add/drop/lookup) serialises on an internal lock;
* every per-object operation — ``fit_object``, ``update_object``,
  ``predict``, ``predict_all`` — holds that object's reentrant lock, so
  a refit can never interleave with a predict on the same object;
* :meth:`object_lock` exposes the per-object lock so collaborators that
  reach the model directly (e.g. an :class:`~repro.core.online.OnlineTracker`
  wrapping ``fleet[object_id]``) can serialise on the *same* lock.

Operations on different objects run fully in parallel.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..motion.base import MotionFunctionFactory
from ..trajectory.point import TimedPoint
from ..trajectory.trajectory import Trajectory
from .config import HPMConfig
from .model import HybridPredictionModel
from .prediction import Prediction, default_motion_factory

__all__ = ["FleetPredictionModel"]


class FleetPredictionModel:
    """A keyed collection of per-object Hybrid Prediction Models.

    Parameters
    ----------
    config:
        Shared configuration for every object's model.
    motion_factory:
        Shared fallback motion-function factory.
    """

    def __init__(
        self,
        config: HPMConfig | None = None,
        motion_factory: MotionFunctionFactory = default_motion_factory,
        **overrides,
    ):
        if config is None:
            config = HPMConfig(**overrides)
        elif overrides:
            config = config.with_overrides(**overrides)
        self.config = config
        self.motion_factory = motion_factory
        self._models: dict[str, HybridPredictionModel] = {}
        self._registry_lock = threading.RLock()
        self._object_locks: dict[str, threading.RLock] = {}
        self._metrics = None

    # ------------------------------------------------------------------
    # concurrency / telemetry
    # ------------------------------------------------------------------
    def object_lock(self, object_id: str) -> threading.RLock:
        """The reentrant lock guarding ``object_id``'s model.

        Created on demand; collaborators that touch ``fleet[object_id]``
        outside the fleet's own methods must hold this lock (see the
        module docstring's concurrency contract).
        """
        with self._registry_lock:
            lock = self._object_locks.get(object_id)
            if lock is None:
                lock = self._object_locks[object_id] = threading.RLock()
            return lock

    def bind_metrics(self, registry) -> None:
        """Instrument every current and future per-object model.

        See :meth:`HybridPredictionModel.bind_metrics`; additionally
        counts fleet-level queries as ``fleet_predict_total``.
        """
        with self._registry_lock:
            self._metrics = registry
            for model in self._models.values():
                model.bind_metrics(registry)

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._models)

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._models

    def object_ids(self) -> list[str]:
        """Tracked object ids, sorted."""
        with self._registry_lock:
            return sorted(self._models)

    def __getitem__(self, object_id: str) -> HybridPredictionModel:
        try:
            return self._models[object_id]
        except KeyError:
            raise KeyError(f"unknown object {object_id!r}") from None

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, histories: Mapping[str, Trajectory]) -> "FleetPredictionModel":
        """Fit (or refit) one model per object history."""
        if not histories:
            raise ValueError("no object histories supplied")
        for object_id, trajectory in histories.items():
            self.fit_object(object_id, trajectory)
        return self

    def fit_object(self, object_id: str, trajectory: Trajectory) -> HybridPredictionModel:
        """Fit (or refit) a single object's model and return it."""
        model = HybridPredictionModel(self.config, self.motion_factory)
        if self._metrics is not None:
            model.bind_metrics(self._metrics)
        model.fit(trajectory)
        with self.object_lock(object_id):
            self._models[object_id] = model
        return model

    def adopt_object(
        self, object_id: str, model: HybridPredictionModel
    ) -> HybridPredictionModel:
        """Install an externally fitted model (e.g. loaded from disk)."""
        if not model.is_fitted:
            raise ValueError(f"cannot adopt unfitted model for {object_id!r}")
        if self._metrics is not None:
            model.bind_metrics(self._metrics)
        with self.object_lock(object_id):
            self._models[object_id] = model
        return model

    def update_object(
        self, object_id: str, new_positions: np.ndarray | Sequence[Sequence[float]]
    ) -> HybridPredictionModel:
        """Stream new movements into one object's model."""
        with self.object_lock(object_id):
            model = self[object_id]
            model.update(new_positions)
            return model

    def drop_object(self, object_id: str) -> None:
        """Stop tracking an object."""
        with self._registry_lock:
            if object_id not in self._models:
                raise KeyError(f"unknown object {object_id!r}")
            del self._models[object_id]
            self._object_locks.pop(object_id, None)

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict(
        self,
        object_id: str,
        recent: Sequence[TimedPoint],
        query_time: int,
        k: int | None = None,
    ) -> list[Prediction]:
        """Predictive query against one object's model."""
        with self.object_lock(object_id):
            predictions = self[object_id].predict(recent, query_time, k)
        if self._metrics is not None:
            self._metrics.counter("fleet_predict_total").inc()
        return predictions

    def predict_all(
        self,
        recents: Mapping[str, Sequence[TimedPoint]],
        query_time: int,
    ) -> dict[str, Prediction]:
        """Top-1 prediction for every supplied object at one query time.

        Objects missing from ``recents`` are skipped; unknown ids raise.
        """
        out: dict[str, Prediction] = {}
        for object_id, recent in recents.items():
            with self.object_lock(object_id):
                out[object_id] = self[object_id].predict_one(
                    list(recent), query_time
                )
        return out

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def total_patterns(self) -> int:
        """Sum of pattern-corpus sizes across the fleet."""
        return sum(m.pattern_count for m in self._models.values())

    def summary(self) -> list[dict]:
        """One row per object: regions, patterns, history length."""
        rows = []
        for object_id in self.object_ids():
            model = self._models[object_id]
            rows.append(
                {
                    "object_id": object_id,
                    "history_length": len(model.history_),
                    "num_regions": len(model.regions_),
                    "num_patterns": model.pattern_count,
                }
            )
        return rows

    def __repr__(self) -> str:
        return f"FleetPredictionModel(objects={len(self)}, period={self.config.period})"
