"""repro — reproduction of "A Hybrid Prediction Model for Moving Objects".

Jeung, Liu, Shen, Zhou — ICDE 2008.

The top-level namespace re-exports the public API:

* :class:`HybridPredictionModel` — fit on a periodic trajectory, predict
  future locations via patterns with motion-function fallback.
* :class:`HPMConfig` — every tunable in one validated record.
* The trajectory substrate (:class:`Trajectory`, :class:`TimedPoint`, ...),
  the motion functions (:class:`RecursiveMotionFunction`, ...), and the
  synthetic scenario generators used by the paper's evaluation
  (:mod:`repro.datagen`).

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .core import (
    FleetFitError,
    FleetPredictionModel,
    HPMConfig,
    HybridPredictionModel,
    HybridPredictor,
    FrequentRegion,
    KeyCodec,
    OnlineTracker,
    PatternKey,
    Prediction,
    RegionSet,
    TrajectoryPattern,
    TrajectoryPatternTree,
    discover_frequent_regions,
    load_fleet,
    load_model,
    mine_trajectory_patterns,
    save_fleet,
    save_model,
)
from .motion import LinearMotionFunction, MotionFunction, RecursiveMotionFunction
from .trajectory import (
    BoundingBox,
    Point,
    TimedPoint,
    Trajectory,
    TrajectoryDataset,
)

__version__ = "1.0.0"

__all__ = [
    "BoundingBox",
    "FleetFitError",
    "FleetPredictionModel",
    "FrequentRegion",
    "HPMConfig",
    "HybridPredictionModel",
    "HybridPredictor",
    "KeyCodec",
    "LinearMotionFunction",
    "MotionFunction",
    "OnlineTracker",
    "PatternKey",
    "Point",
    "Prediction",
    "RecursiveMotionFunction",
    "RegionSet",
    "TimedPoint",
    "Trajectory",
    "TrajectoryDataset",
    "TrajectoryPattern",
    "TrajectoryPatternTree",
    "__version__",
    "discover_frequent_regions",
    "load_fleet",
    "load_model",
    "mine_trajectory_patterns",
    "save_fleet",
    "save_model",
]
