"""Background refit scheduling: coalescing, retry with backoff, drain.

The ingest path used to spawn one fire-and-forget ``asyncio.Task`` per
object the moment its tracker crossed ``update_after``.  Under an ingest
storm that meant an unbounded number of concurrent whole-model refits
competing with the predict path for executor threads — and a refit that
raised left its exception in an unawaited task ("Task exception was
never retrieved") with the tracker's pending fixes stranded forever.

:class:`RefitScheduler` replaces that dict of tasks with an explicit
lifecycle per object::

    idle -> queued -> running -+-> idle            (success)
              ^                |
              |   (backoff)    v
              +---- waiting <- failed              (attempt < max_retries)
                               |
                               +-> dead-letter -> idle   (attempts exhausted)

* **Coalescing** — at most one queued entry per object.  A refit request
  arriving while that object's refit is *running* sets a dirty flag so
  one more run happens afterwards (new fixes arrived mid-flush); a
  request while it is queued or in backoff is a no-op.
* **Bounded concurrency** — at most ``max_concurrency`` refits run at
  once; everything else waits in FIFO order.  When an
  :class:`~repro.serve.admission.AdmissionController` is attached, each
  dispatch also needs a ``background`` slot, so refits yield to
  foreground traffic during watermark shedding.
* **Retry with jittered exponential backoff** — a failed refit re-queues
  after ``base_delay * 2**attempt`` (capped at ``max_delay``) times a
  deterministic jitter factor drawn from a seeded RNG.  After
  ``max_retries`` failures the object lands in the dead-letter counter
  (``serve_refit_dead_letter_total``) and goes idle; the *next* ingest
  trigger starts a fresh attempt cycle.
* **Clean drain** — :meth:`drain` waits until the scheduler is truly
  quiescent: no running task, no queued entry, no backoff timer, and no
  dirty re-run — looping as long as new work keeps arriving, which
  closes the old race where an ingest during drain scheduled a task
  nobody awaited.

Every task created here has a done-callback that retrieves its result,
so no exception can ever go unobserved; failures are counted and
retried instead.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Awaitable, Callable

__all__ = ["RefitScheduler"]

# lifecycle states (kept as strings for cheap introspection in tests)
_QUEUED = "queued"
_RUNNING = "running"
_WAITING = "waiting"  # backoff timer pending


class _Entry:
    __slots__ = ("state", "attempts", "dirty", "payload", "timer")

    def __init__(self, payload) -> None:
        self.state = _QUEUED
        self.attempts = 0
        self.dirty = False
        self.payload = payload
        self.timer: asyncio.TimerHandle | None = None


class RefitScheduler:
    """Run per-object refits with bounded concurrency and retries.

    Parameters
    ----------
    execute:
        ``async execute(object_id, payload) -> None`` — performs one
        refit (typically ``run_in_executor(None, tracker.flush_updates)``
        plus bookkeeping).  An exception marks the attempt failed.
    max_concurrency:
        Refits running at once.
    max_retries:
        Failed attempts before an object dead-letters (the first run
        plus ``max_retries - 1`` retries).
    base_delay / max_delay:
        Exponential backoff bounds in seconds.
    jitter:
        Backoff is multiplied by ``1 + jitter * rng.random()``; 0
        disables jitter (deterministic tests).
    seed:
        Seeds the private jitter RNG (reproducible fault drills).
    admission:
        Optional :class:`~repro.serve.admission.AdmissionController`;
        each running refit holds a ``background`` slot and dispatch is
        deferred while the controller refuses one.
    metrics:
        Optional registry for refit counters/gauges.
    """

    def __init__(
        self,
        execute: Callable[[str, object], Awaitable[None]],
        *,
        max_concurrency: int = 2,
        max_retries: int = 5,
        base_delay: float = 0.05,
        max_delay: float = 5.0,
        jitter: float = 0.25,
        seed: int = 0,
        admission=None,
        metrics=None,
    ):
        if max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        if max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {max_retries}")
        if base_delay < 0 or max_delay < base_delay:
            raise ValueError(
                f"need 0 <= base_delay <= max_delay, got "
                f"{base_delay}/{max_delay}"
            )
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.execute = execute
        self.max_concurrency = max_concurrency
        self.max_retries = max_retries
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.jitter = jitter
        self.admission = admission
        self.metrics = metrics
        self._rng = random.Random(seed)
        self._entries: dict[str, _Entry] = {}
        self._queue: list[str] = []
        self._tasks: dict[str, asyncio.Task] = {}
        self._deferred: asyncio.TimerHandle | None = None
        self._changed: asyncio.Event = asyncio.Event()
        self.dead_letters: dict[str, int] = {}
        self.completed = 0
        self.retries = 0
        self.failures = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def request(self, object_id: str, payload) -> bool:
        """Ask for a refit of ``object_id``; returns True if newly scheduled.

        ``payload`` is handed to ``execute`` (the serve layer passes the
        object's tracker).  Coalescing rules are in the module docstring.
        """
        entry = self._entries.get(object_id)
        if entry is not None:
            if entry.state == _RUNNING and not entry.dirty:
                # New data arrived mid-refit: run once more afterwards.
                entry.dirty = True
                entry.payload = payload
                return True
            return False
        entry = _Entry(payload)
        self._entries[object_id] = entry
        self._queue.append(object_id)
        self._count("serve_refits_scheduled_total")
        self._maybe_dispatch()
        return True

    def _maybe_dispatch(self) -> None:
        while self._queue and len(self._tasks) < self.max_concurrency:
            if self.admission is not None:
                decision = self.admission.try_acquire("background")
                if not decision.admitted:
                    # Foreground pressure: try again shortly instead of
                    # spinning; drain() keeps waiting meanwhile.
                    self._defer_dispatch(max(decision.retry_after, 0.05))
                    return
            object_id = self._queue.pop(0)
            entry = self._entries[object_id]
            entry.state = _RUNNING
            task = asyncio.get_running_loop().create_task(
                self._run(object_id, entry),
                name=f"refit:{object_id}",
            )
            self._tasks[object_id] = task
            # Always retrieve the result so no exception is ever dropped.
            task.add_done_callback(self._task_done(object_id))
        self._gauges()

    def _defer_dispatch(self, delay: float) -> None:
        if self._deferred is not None:
            return
        loop = asyncio.get_running_loop()

        def retry() -> None:
            self._deferred = None
            self._maybe_dispatch()
            self._wake()

        self._deferred = loop.call_later(delay, retry)

    def _task_done(self, object_id: str):
        def callback(task: asyncio.Task) -> None:
            self._tasks.pop(object_id, None)
            if self.admission is not None:
                self.admission.release("background")
            if not task.cancelled() and task.exception() is not None:
                # _run handles its own failures; anything surfacing here
                # is a scheduler bug — count it, never lose it silently.
                self._count("serve_refit_unexpected_errors_total")
                self._entries.pop(object_id, None)
            self._maybe_dispatch()
            self._wake()

        return callback

    async def _run(self, object_id: str, entry: _Entry) -> None:
        started = time.perf_counter()
        try:
            await self.execute(object_id, entry.payload)
        except asyncio.CancelledError:
            self._entries.pop(object_id, None)
            raise
        except Exception:
            self.failures += 1
            entry.attempts += 1
            self._count("serve_refit_errors_total")
            if entry.attempts >= self.max_retries:
                self._dead_letter(object_id, entry)
            else:
                self._schedule_retry(object_id, entry)
            return
        self.completed += 1
        self._count("serve_refits_total")
        self._observe_seconds(time.perf_counter() - started)
        if entry.dirty:
            # Fixes arrived while we flushed: start a fresh cycle.
            entry.dirty = False
            entry.attempts = 0
            entry.state = _QUEUED
            self._queue.append(object_id)
        else:
            self._entries.pop(object_id, None)

    def _schedule_retry(self, object_id: str, entry: _Entry) -> None:
        delay = min(
            self.max_delay, self.base_delay * (2 ** (entry.attempts - 1))
        )
        delay *= 1.0 + self.jitter * self._rng.random()
        entry.state = _WAITING
        self.retries += 1
        self._count("serve_refit_retries_total")
        loop = asyncio.get_running_loop()

        def requeue() -> None:
            entry.timer = None
            if self._entries.get(object_id) is entry:
                entry.state = _QUEUED
                self._queue.append(object_id)
                self._maybe_dispatch()
                self._wake()

        entry.timer = loop.call_later(delay, requeue)

    def _dead_letter(self, object_id: str, entry: _Entry) -> None:
        self.dead_letters[object_id] = self.dead_letters.get(object_id, 0) + 1
        self._count("serve_refit_dead_letter_total")
        self._entries.pop(object_id, None)
        self._gauges()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def quiescent(self) -> bool:
        """True when nothing is running, queued, or waiting on backoff."""
        return not self._entries and not self._tasks and self._deferred is None

    async def drain(self) -> None:
        """Wait until the scheduler is quiescent (shutdown/tests).

        Loops as long as refits keep completing, retrying, or being
        scheduled — an ingest racing with drain extends the wait instead
        of leaking an unawaited task.
        """
        while not self.quiescent:
            self._changed.clear()
            self._maybe_dispatch()
            if self.quiescent:
                break
            await self._changed.wait()

    def cancel(self) -> None:
        """Drop queued/waiting work and cancel running refits (hard stop)."""
        for entry in self._entries.values():
            if entry.timer is not None:
                entry.timer.cancel()
                entry.timer = None
        if self._deferred is not None:
            self._deferred.cancel()
            self._deferred = None
        self._entries.clear()
        self._queue.clear()
        for task in self._tasks.values():
            task.cancel()
        self._wake()

    def stats(self) -> dict[str, float]:
        return {
            "running": len(self._tasks),
            "queued": len(self._queue),
            "tracked": len(self._entries),
            "completed": self.completed,
            "retries": self.retries,
            "failures": self.failures,
            "dead_letters": sum(self.dead_letters.values()),
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _wake(self) -> None:
        self._changed.set()

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _observe_seconds(self, seconds: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram("serve_refit_seconds").observe(seconds)

    def _gauges(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "serve_refit_queue_depth", help="refits queued or running"
            ).set(len(self._entries))

    def __repr__(self) -> str:
        return (
            f"RefitScheduler(running={len(self._tasks)}, "
            f"queued={len(self._queue)}, completed={self.completed})"
        )
