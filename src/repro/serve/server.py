"""The asyncio prediction service: state, batching, cache, HTTP front.

Two layers:

* :class:`PredictionService` — the protocol-free application core.  It
  owns the fleet, the per-object :class:`~repro.core.online.OnlineTracker`
  ingest state, the prediction cache, the request batcher, the
  admission controller, the refit scheduler, and the metrics registry.
  Model passes are CPU work and run on the event loop's default
  executor; all shared state is guarded by the fleet's per-object locks
  (see the concurrency contract in :mod:`repro.core.fleet`), so the
  loop stays responsive and correct.
* :class:`PredictionServer` — a minimal stdlib HTTP/1.1 front-end over
  ``asyncio.start_server`` (keep-alive, Content-Length framing; no
  chunked encoding, TLS, or HTTP/2 — put a real proxy in front for
  that).  Routing and wire format live in :mod:`repro.serve.handlers`.

Robustness model (the admission/degradation ladder)
---------------------------------------------------
Every external request is classified (``predict`` or ``ingest``) and
must pass :class:`~repro.serve.admission.AdmissionController` before any
work is scheduled: over-rate clients get ``429``, full classes and
watermark overload get ``503 + Retry-After``.  Admitted predicts carry a
deadline (request ``deadline_ms`` or ``ServeConfig.default_deadline_ms``)
enforced across the batch wait and executor hop; on deadline expiry the
service degrades instead of hanging: a stale cache entry (response
marked ``"degraded": true``) → a motion-function-only prediction → 503.
Background refits run under :class:`~repro.serve.refit.RefitScheduler`
(bounded concurrency, coalescing, backoff retry, dead-lettering) and
yield to foreground traffic during shedding.  With
``ServeConfig.chaos`` set, a seeded
:class:`~repro.serve.chaos.FaultInjector` perturbs the request path for
resilience drills; with chaos off and default limits the service's
responses are byte-identical to the pre-hardening stack.

Typical embedding (the ``repro serve`` CLI does exactly this)::

    fleet = FleetPredictionModel(config)
    fleet.fit({"bus42": history})
    service = PredictionService(fleet, ServeConfig())
    server = PredictionServer(service, host="0.0.0.0", port=8080)
    asyncio.run(server.run_forever())
"""

from __future__ import annotations

import asyncio
import time
from contextlib import suppress
from dataclasses import dataclass, field

from ..core.fleet import FleetPredictionModel
from ..core.online import OnlineTracker
from ..core.scorekernel import KERNEL_BATCH_BUCKETS, prime_plan_queries
from ..trajectory.point import TimedPoint
from .admission import AdmissionController
from .batching import RequestBatcher
from .cache import PredictionCache
from .chaos import ChaosConfig, FaultInjector
from .handlers import ApiError, encode_json, route
from .metrics import FIT_PHASE_BUCKETS, FIT_PHASES, MetricsRegistry
from .refit import RefitScheduler

__all__ = ["ServeConfig", "PredictionService", "PredictionServer"]


@dataclass(frozen=True)
class ServeConfig:
    """Operator-tunable serving knobs (CLI flags map 1:1 onto these).

    The admission/deadline/hardening defaults are deliberately generous:
    they bound pathological behaviour (storms, slow-loris clients,
    runaway refits) without ever firing under healthy traffic, so the
    default configuration serves byte-identical responses to the
    pre-hardening stack.
    """

    cache_entries: int = 4096
    cache_ttl: float | None = 30.0
    cache_quantum: float = 1.0
    max_batch: int = 32
    batch_delay: float = 0.002
    update_after: int | None = None
    enable_cache: bool = True
    enable_batching: bool = True
    # --- admission control ---
    #: max in-flight predict requests before shedding with 503
    max_inflight_predict: int = 256
    #: max in-flight ingest requests before shedding with 503
    max_inflight_ingest: int = 128
    #: total depth that trips shedding mode (0 disables the watermark)
    high_watermark: int = 320
    #: total depth at which shedding mode clears (hysteresis)
    low_watermark: int = 160
    #: per-client token-bucket refill rate in req/s (0 disables)
    client_rate: float = 0.0
    #: per-client token-bucket capacity (burst allowance)
    client_burst: float = 20.0
    #: Retry-After seconds advertised on shed (503) responses
    retry_after: float = 1.0
    # --- deadlines & degradation ---
    #: server-side default predict deadline; ``None`` disables
    default_deadline_ms: float | None = 10_000.0
    # --- background refits ---
    #: per-flush refit mode override: "delta" / "full" / None = model default
    refit_mode: str | None = None
    #: force a full re-mine every Nth flush per object (None = never force)
    refit_full_every: int | None = None
    #: how trackers treat fixes non-contiguous with the history: "reject"/"pad"
    gap_policy: str = "reject"
    #: refits running concurrently
    refit_concurrency: int = 2
    #: failed attempts before an object dead-letters
    refit_max_retries: int = 5
    #: first-retry backoff in seconds (doubles per attempt)
    refit_base_delay: float = 0.05
    #: backoff ceiling in seconds
    refit_max_delay: float = 5.0
    #: jitter factor on the backoff (0 = deterministic)
    refit_jitter: float = 0.25
    #: seed for the backoff-jitter RNG
    refit_seed: int = 0
    # --- HTTP hardening ---
    #: request line + headers byte budget (431 beyond it)
    max_header_bytes: int = 16_384
    #: header count budget (431 beyond it)
    max_headers: int = 100
    #: request body byte budget (413 beyond it)
    max_body_bytes: int = 1_048_576
    #: seconds a connection may sit idle mid-read before being reaped
    idle_timeout: float | None = 60.0
    # --- fault injection ---
    #: seeded fault plan; ``None`` (production) injects nothing
    chaos: ChaosConfig | None = field(default=None)


class PredictionService:
    """Application core behind the HTTP handlers.

    Parameters
    ----------
    fleet:
        Fitted per-object models (a single-model deployment is a fleet
        of one).  The service binds its metrics registry to the fleet,
        instrumenting every model's predict hot path.
    config:
        Serving knobs; ``ServeConfig()`` defaults are sensible.
    metrics:
        Optional shared registry (a fresh one is created by default).
    """

    def __init__(
        self,
        fleet: FleetPredictionModel,
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.fleet = fleet
        self.config = config or ServeConfig()
        self.metrics = metrics or MetricsRegistry()
        fleet.bind_metrics(self.metrics)
        # Register the fit-phase histograms with fit-scale buckets before
        # any name-only get-or-create can claim them with latency buckets.
        for phase in FIT_PHASES:
            self.metrics.histogram(
                f"fit_phase_seconds_{phase}",
                help=f"seconds spent in the {phase} fit phase",
                buckets=FIT_PHASE_BUCKETS,
            )
        # Same pre-registration for the query-kernel instruments: the
        # batch-size histogram needs count-scale buckets, and the fallback
        # counter should appear at /metrics (and in shard-router merges)
        # even before the first demotion.
        self.metrics.histogram(
            "predict_kernel_batch_size",
            help="FQP lookups scored per kernel invocation",
            buckets=KERNEL_BATCH_BUCKETS,
        )
        self.metrics.counter(
            "predict_kernel_fallback_total",
            help="Prepared plans demoted from the kernel to the scan backend",
        )
        # Replay the fleet's recorded fit-phase timings into the registry:
        # warmed-up models were fitted before this registry existed (in a
        # worker, a CLI fit run, or a snapshot write), so /metrics would
        # otherwise never show where their fit time went.
        for object_id in fleet.object_ids():
            model = fleet[object_id]
            model._observe_fit_phases(self.metrics)
        self.cache = PredictionCache(
            max_entries=self.config.cache_entries,
            ttl=self.config.cache_ttl,
            quantum=self.config.cache_quantum,
            metrics=self.metrics,
        )
        self.batcher = RequestBatcher(
            self._execute_batch,
            max_batch=self.config.max_batch,
            max_delay=self.config.batch_delay,
            metrics=self.metrics,
        )
        self.admission = AdmissionController(
            {
                "predict": self.config.max_inflight_predict,
                "ingest": self.config.max_inflight_ingest,
                "background": self.config.refit_concurrency,
            },
            high_watermark=self.config.high_watermark,
            low_watermark=self.config.low_watermark,
            client_rate=self.config.client_rate,
            client_burst=self.config.client_burst,
            retry_after=self.config.retry_after,
            metrics=self.metrics,
        )
        self.refits = RefitScheduler(
            self._execute_refit,
            max_concurrency=self.config.refit_concurrency,
            max_retries=self.config.refit_max_retries,
            base_delay=self.config.refit_base_delay,
            max_delay=self.config.refit_max_delay,
            jitter=self.config.refit_jitter,
            seed=self.config.refit_seed,
            admission=self.admission,
            metrics=self.metrics,
        )
        self.chaos: FaultInjector | None = (
            FaultInjector(self.config.chaos, metrics=self.metrics)
            if self.config.chaos is not None and self.config.chaos.active
            else None
        )
        self.trackers: dict[str, OnlineTracker] = {}
        self.metrics.gauge(
            "serve_objects", help="objects with a fitted model"
        ).set(len(fleet))

    @classmethod
    def from_snapshot(
        cls,
        snapshot_dir,
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | None = None,
        warmup_workers: int | None = None,
        prewarm_locate: int = 512,
        mmap: bool = True,
    ) -> "PredictionService":
        """Build a service from a fleet snapshot directory.

        ``warmup_workers`` parallelises the per-object archive loads
        (see :func:`repro.core.persistence.load_fleet`) so a large
        snapshot warms up in a fraction of the serial time before the
        first request is accepted.

        ``prewarm_locate`` replays that many history-tail samples per
        object through ``RegionSet.locate`` — the memo is dropped on
        snapshot write, so without this the first requests after a
        restore pay per-region KD-tree probes and cold-start p99 cliffs.
        Pass 0 to skip.

        ``mmap`` (v2 snapshots only) maps the packed blocks read-only
        instead of materialising them, so concurrent services on one
        host share the page cache; pass ``False`` to force private
        copies.
        """
        from ..core.persistence import load_fleet

        fleet = load_fleet(snapshot_dir, max_workers=warmup_workers, mmap=mmap)
        if prewarm_locate:
            for object_id in fleet.object_ids():
                fleet[object_id].prewarm_locate_cache(prewarm_locate)
        return cls(fleet, config, metrics)

    # ------------------------------------------------------------------
    # predict path
    # ------------------------------------------------------------------
    async def predict(
        self,
        object_id: str,
        recent: list[tuple[int, float, float]] | None,
        query_time: int,
        k: int | None = None,
        deadline_ms: float | None = None,
    ):
        """Answer one predictive query.

        Returns ``(predictions, cached, degraded)``.  ``deadline_ms``
        overrides ``ServeConfig.default_deadline_ms``; when the deadline
        expires before the model pass completes, the answer walks the
        degradation ladder (stale cache → motion-only → 503) instead of
        blocking forever.
        """
        if object_id not in self.fleet:
            raise ApiError(404, f"unknown object {object_id!r}")
        if recent is not None:
            window = [TimedPoint(t, x, y) for t, x, y in recent]
        else:
            tracker = self.trackers.get(object_id)
            if tracker is None or not tracker.window:
                raise ApiError(
                    400,
                    f"no recent movements supplied and object {object_id!r} "
                    "has no ingested fixes",
                )
            window = tracker.window
        self.metrics.counter("serve_predict_requests_total").inc()

        key = self.cache.make_key(object_id, window, query_time, k)
        stale = None
        if self.config.enable_cache:
            # Stale-while-refit read: a TTL-expired value rides along as
            # the degradation ladder's first rung in case the fresh
            # model pass below blows its deadline.
            value, fresh = self.cache.lookup(key)
            if fresh:
                return value, True, False
            stale = value

        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        deadline = (
            time.monotonic() + deadline_ms / 1000.0
            if deadline_ms is not None
            else None
        )

        request = (tuple(p.as_tuple() for p in window), query_time, k)
        try:
            predictions = await self._predict_within(
                object_id, request, deadline
            )
        except (asyncio.TimeoutError, TimeoutError):
            self.metrics.counter("serve_deadline_timeouts_total").inc()
            return self._degraded_answer(object_id, window, query_time, stale)
        if self.config.enable_cache:
            self.cache.put(key, predictions)
        return predictions, False, False

    async def _predict_within(self, object_id, request, deadline):
        """One model pass, honouring ``deadline`` (monotonic seconds)."""
        remaining = None
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # Pre-expired (e.g. overload delayed admission): degrade
                # without queueing more work behind the congestion.
                raise asyncio.TimeoutError
        if self.config.enable_batching:
            # Shield the shared batch future: a deadline on *this* waiter
            # must not cancel the result out from under coalesced twins.
            awaitable = asyncio.shield(
                self.batcher.submit(object_id, request)
            )
        else:
            awaitable = asyncio.get_running_loop().run_in_executor(
                None, self._execute_batch, object_id, [request]
            )
        if remaining is not None:
            result = await asyncio.wait_for(awaitable, timeout=remaining)
        else:
            result = await awaitable
        return result if self.config.enable_batching else result[0]

    def _degraded_answer(self, object_id, window, query_time, stale):
        """The graceful-degradation ladder, cheapest viable rung first.

        1. The TTL-expired cache value captured for exactly this query
           before the model pass — stale beats absent under overload.
        2. A motion-function-only prediction: no pattern scoring, no
           executor hop; needs the object lock, taken *non-blocking* so
           an event-loop caller can never stall behind a slow refit.
        3. Give up: 503 with Retry-After.

        Degraded responses carry ``"degraded": true`` so clients and the
        load generator can separate full-quality answers from fallbacks.
        """
        if stale is not None:
            self.metrics.counter("serve_degraded_total").inc()
            self.metrics.counter("serve_degraded_total_stale").inc()
            return stale, True, True
        lock = self.fleet.object_lock(object_id)
        if lock.acquire(blocking=False):
            try:
                model = self.fleet[object_id]
                prediction = model.prepare(window).motion_prediction(query_time)
            finally:
                lock.release()
            self.metrics.counter("serve_degraded_total").inc()
            self.metrics.counter("serve_degraded_total_motion").inc()
            return [prediction], False, True
        raise ApiError(
            503,
            f"deadline exceeded for object {object_id!r} and no degraded "
            "answer is available",
            retry_after=self.config.retry_after,
        )

    def _execute_batch(self, object_id: str, requests):
        """One model pass for a whole batch (runs on the executor).

        Requests that share a recent window — the common case when a hot
        object is probed at many query times — share one prepared query
        plan, so region mapping, premise-key encoding and motion-function
        fitting happen once per distinct window instead of once per
        request.  On the kernel backend, all the batch's FQP lookups are
        additionally scored in one kernel invocation before answering
        (``prime_plan_queries``).  Answers are byte-identical to
        per-request ``fleet.predict`` calls.
        """
        results = []
        # One lock acquisition covers the whole batch.
        with self.fleet.object_lock(object_id):
            model = self.fleet[object_id]
            plans: dict = {}
            parsed = []
            for recent_tuple, query_time, k in requests:
                plan = plans.get(recent_tuple)
                if plan is None:
                    window = [TimedPoint(t, x, y) for t, x, y in recent_tuple]
                    plan = plans[recent_tuple] = model.prepare(window)
                parsed.append((plan, query_time, k))
            if len(parsed) > 1:
                prime_plan_queries(
                    ((plan, query_time) for plan, query_time, _k in parsed),
                    metrics=self.metrics,
                )
            for plan, query_time, k in parsed:
                results.append(model.predict_prepared(plan, query_time, k))
        self.metrics.counter("fleet_predict_total").inc(len(requests))
        return results

    async def predict_all(
        self,
        recents: dict[str, list[tuple[int, float, float]]] | None,
        query_time: int,
    ) -> tuple[dict, list[str]]:
        """Top-1 predictions for many objects at one query time.

        ``recents`` maps object ids to recent windows; ``None`` scores
        every object with a non-empty ingest-fed tracker window.
        Returns ``(predictions_by_id, unknown_ids)`` — ids the fleet
        doesn't know are reported, not fatal, so the shard router can
        scatter a request and merge per-shard answers.  The batch runs
        on the executor (serial per object, under each object's lock)
        and skips the prediction cache: fleet-wide sweeps would only
        churn it.
        """
        unknown: list[str] = []
        windows: dict[str, list[TimedPoint]] = {}
        if recents is None:
            for object_id, tracker in self.trackers.items():
                if object_id in self.fleet and tracker.window:
                    windows[object_id] = tracker.window
        else:
            for object_id, fixes in recents.items():
                if object_id not in self.fleet:
                    unknown.append(object_id)
                else:
                    windows[object_id] = [
                        TimedPoint(t, x, y) for t, x, y in fixes
                    ]
        self.metrics.counter("serve_predict_all_requests_total").inc()
        if not windows:
            return {}, sorted(unknown)
        results = await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.fleet.predict_all(windows, query_time)
        )
        self.metrics.counter("fleet_predict_total").inc(len(results))
        return results, sorted(unknown)

    # ------------------------------------------------------------------
    # ingest path
    # ------------------------------------------------------------------
    async def ingest(
        self, object_id: str, fixes: list[tuple[int, float, float]]
    ) -> dict:
        """Stream fixes into the object's tracker; maybe schedule a refit."""
        if object_id not in self.fleet:
            raise ApiError(404, f"unknown object {object_id!r}")
        tracker = self.trackers.get(object_id)
        if tracker is None:
            tracker = OnlineTracker(
                self.fleet[object_id],
                update_after=self.config.update_after,
                lock=self.fleet.object_lock(object_id),
                gap_policy=self.config.gap_policy,
                refit_mode=self.config.refit_mode,
                full_refit_every=self.config.refit_full_every,
            )
            self.trackers[object_id] = tracker
        for t, x, y in fixes:
            tracker.observe(t, x, y)
        self.metrics.counter("serve_ingest_fixes_total").inc(len(fixes))
        # Stale the object's cached answers: the window has moved.
        self.cache.invalidate(object_id)

        refit_scheduled = False
        if tracker.update_due:
            refit_scheduled = self.refits.request(object_id, tracker)
        return {
            "object_id": object_id,
            "accepted": len(fixes),
            "pending": tracker.pending_count,
            "window": len(tracker.window),
            "refit_scheduled": refit_scheduled,
        }

    async def _execute_refit(self, object_id: str, tracker) -> None:
        """One ``flush_updates`` pass (the paper's dynamic-update path).

        Runs under the :class:`RefitScheduler`, which owns retries,
        backoff, and the dead-letter accounting; an exception here marks
        the attempt failed and the tracker's pending fixes stay buffered
        for the retry.
        """
        flushed = await asyncio.get_running_loop().run_in_executor(
            None, tracker.flush_updates
        )
        self.metrics.counter("serve_refit_fixes_total").inc(flushed)
        stats = tracker.model.last_refit_stats_
        if flushed and stats is not None:
            self.metrics.counter(f"serve_refit_mode_total_{stats.mode}").inc()
            self.metrics.counter(f"serve_refit_index_total_{stats.index}").inc()
            if stats.fallback is not None:
                self.metrics.counter(
                    f"serve_refit_fallback_total_{stats.fallback}"
                ).inc()
        # The refreshed corpus may answer differently.
        self.cache.invalidate(object_id)

    async def drain(self) -> None:
        """Complete pending batches and refits (shutdown/tests).

        Loops until the refit scheduler is quiescent, so an ingest that
        races with shutdown extends the drain instead of leaking work.
        """
        await self.batcher.drain()
        await self.refits.drain()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def objects_summary(self) -> list[dict]:
        rows = []
        for object_id in self.fleet.object_ids():
            model = self.fleet[object_id]
            tracker = self.trackers.get(object_id)
            rows.append(
                {
                    "object_id": object_id,
                    "patterns": model.pattern_count,
                    "regions": len(model.regions_),
                    "window": len(tracker.window) if tracker else 0,
                    "pending": tracker.pending_count if tracker else 0,
                }
            )
        return rows


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_METRIC_PATHS = {
    "/predict",
    "/ingest",
    "/predict_all",
    "/objects",
    "/healthz",
    "/metrics",
}

#: externally admitted request classes by (method, path)
_REQUEST_CLASSES = {
    ("POST", "/predict"): "predict",
    ("POST", "/ingest"): "ingest",
    ("POST", "/predict_all"): "predict",
}


class _HttpLimitError(Exception):
    """A request exceeded a hardening limit; answer ``status`` and close."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class PredictionServer:
    """Keep-alive HTTP/1.1 front-end for a :class:`PredictionService`.

    Shutdown comes in two grades: :meth:`close` is the abrupt test-suite
    path (drop connections, cancel handlers), :meth:`shutdown` is the
    production SIGTERM path — stop accepting, let in-flight requests
    finish (keep-alive clients are told ``Connection: close`` on their
    last response), drain pending batches and the refit scheduler, and
    only then tear sockets down.  ``run_forever(handle_signals=True)``
    wires SIGTERM/SIGINT to :meth:`shutdown`, which is how both the
    single-process CLI and the shard workers exit without dropping work.
    """

    def __init__(
        self,
        service: PredictionService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()
        self._draining = False
        self._stop_event: asyncio.Event | None = None

    async def start(self) -> None:
        """Bind and start accepting; ``port=0`` picks an ephemeral port."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting, drain in-flight work, drop connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.drain()
        for writer in list(self._connections):
            writer.close()
        self._connections.clear()
        for task in list(self._handlers):
            task.cancel()
        await asyncio.gather(*self._handlers, return_exceptions=True)
        self._handlers.clear()

    def request_shutdown(self) -> None:
        """Ask ``run_forever`` to exit gracefully (signal-handler safe)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def shutdown(self, grace: float = 5.0) -> None:
        """Graceful stop: drain in-flight requests and background work.

        1. Close the listening socket — no new connections.
        2. Mark the server draining: every connection handler finishes
           its current request, answers it with ``Connection: close``,
           and exits; wait up to ``grace`` seconds for that.
        3. Drain the service — pending prediction batches complete and
           the :class:`~repro.serve.refit.RefitScheduler` runs to
           quiescence, so an ingest accepted before the signal still
           lands in the model.
        4. Force-close whatever is left (slow-loris stragglers).
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._draining = True
        deadline = time.monotonic() + max(0.0, grace)
        while self._handlers and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        await self.service.drain()
        await self.close()

    async def run_forever(
        self, *, handle_signals: bool = False, grace: float = 5.0
    ) -> None:
        """Start (if needed) and serve until cancelled or signalled.

        With ``handle_signals=True``, SIGTERM and SIGINT trigger a
        graceful :meth:`shutdown` with ``grace`` seconds of drain
        instead of killing the loop mid-request.
        """
        import signal as _signal

        if self._server is None:
            await self.start()
        self._stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed: list = []
        if handle_signals:
            for sig in (_signal.SIGTERM, _signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.request_shutdown)
                    installed.append(sig)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # non-main thread or unsupported platform
        serve_task = asyncio.ensure_future(self._server.serve_forever())
        stop_task = asyncio.ensure_future(self._stop_event.wait())
        try:
            await asyncio.wait(
                {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            stopped = self._stop_event.is_set()
            for task in (serve_task, stop_task):
                task.cancel()
            await asyncio.gather(
                serve_task, stop_task, return_exceptions=True
            )
            for sig in installed:
                with suppress(Exception):
                    loop.remove_signal_handler(sig)
            self._stop_event = None
            if stopped:
                await self.shutdown(grace)
            else:
                await self.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        metrics = self.service.metrics
        chaos = self.service.chaos
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except asyncio.TimeoutError:
                    # Idle or slow-loris connection: reap it quietly.
                    metrics.counter("serve_idle_timeouts_total").inc()
                    break
                except _HttpLimitError as exc:
                    metrics.counter("serve_http_limit_total").inc()
                    metrics.counter(
                        f"serve_http_limit_total_{exc.status}"
                    ).inc()
                    self._write_response(
                        writer,
                        exc.status,
                        "application/json",
                        encode_json({"error": exc.message}),
                        {},
                        keep_alive=False,
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request

                if chaos is not None:
                    delay = chaos.latency_s()
                    if delay > 0:
                        await asyncio.sleep(delay)
                    if chaos.should_drop():
                        break  # abrupt close, no response bytes

                started = time.perf_counter()
                bare = path.split("?", 1)[0]
                request_class = _REQUEST_CLASSES.get((method, bare))
                admitted = False
                if request_class is not None:
                    decision = self.service.admission.try_acquire(
                        request_class, self._client_id(headers, writer)
                    )
                    if not decision.admitted:
                        self._write_response(
                            writer,
                            decision.status,
                            "application/json",
                            encode_json({"error": decision.reason}),
                            {"Retry-After": _fmt_retry(decision.retry_after)},
                            keep_alive=True,
                        )
                        await writer.drain()
                        continue
                    admitted = True
                try:
                    try:
                        if chaos is not None:
                            chaos.raise_for_error()
                        status, ctype, payload, extra = await self._dispatch(
                            method, path, body
                        )
                    except Exception as exc:  # handler bug: answer, keep serving
                        metrics.counter("serve_http_errors_total").inc()
                        status, ctype, extra = 500, "application/json", {}
                        payload = (
                            b'{"error":"internal server error: '
                            + type(exc).__name__.encode("ascii", "replace")
                            + b'"}'
                        )
                finally:
                    if admitted:
                        self.service.admission.release(request_class)
                metrics.counter("serve_http_requests_total").inc()
                if bare in _METRIC_PATHS:
                    metrics.counter(
                        f"serve_http_requests_total_{bare.strip('/')}"
                    ).inc()
                metrics.histogram("serve_http_request_seconds").observe(
                    time.perf_counter() - started
                )
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                    and not self._draining
                )
                self._write_response(
                    writer, status, ctype, payload, extra, keep_alive
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        except asyncio.CancelledError:
            # Server shutdown: end the connection quietly instead of
            # letting the cancellation escape into asyncio's protocol
            # callback (which would log it as an error).
            pass
        finally:
            if task is not None:
                self._handlers.discard(task)
            self._connections.discard(writer)
            writer.close()
            with suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, str, bytes, dict[str, str]]:
        """Route one parsed request; the shard router front-end overrides
        this to forward instead of handling locally."""
        return await route(self.service, method, path, body)

    @staticmethod
    def _client_id(headers: dict[str, str], writer: asyncio.StreamWriter) -> str:
        """Rate-limit key: ``X-Client-Id`` header, else the peer address."""
        client = headers.get("x-client-id")
        if client:
            return client
        peer = writer.get_extra_info("peername")
        if isinstance(peer, (tuple, list)) and peer:
            return str(peer[0])
        return "unknown"

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request under the hardening limits.

        Raises :class:`_HttpLimitError` (431/413) when a budget is
        exceeded and :class:`asyncio.TimeoutError` when the client goes
        idle mid-request (``ServeConfig.idle_timeout``).
        """
        config = self.service.config
        line = await self._read_line(reader, config.idle_timeout)
        if not line:
            return None
        header_bytes = len(line)
        if header_bytes > config.max_header_bytes:
            raise _HttpLimitError(
                431,
                f"request line of {header_bytes} bytes exceeds the "
                f"{config.max_header_bytes}-byte header budget",
            )
        parts = line.decode("latin-1").strip().split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            raw = await self._read_line(reader, config.idle_timeout)
            if raw in (b"\r\n", b"\n", b""):
                break
            header_bytes += len(raw)
            if header_bytes > config.max_header_bytes:
                raise _HttpLimitError(
                    431,
                    f"headers exceed the {config.max_header_bytes}-byte "
                    "budget",
                )
            if len(headers) >= config.max_headers:
                raise _HttpLimitError(
                    431,
                    f"more than {config.max_headers} request headers",
                )
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", 0) or 0)
        except ValueError:
            raise _HttpLimitError(400, "bad Content-Length header") from None
        if length > config.max_body_bytes:
            raise _HttpLimitError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{config.max_body_bytes}-byte limit",
            )
        if length:
            if config.idle_timeout is not None:
                body = await asyncio.wait_for(
                    reader.readexactly(length), config.idle_timeout
                )
            else:
                body = await reader.readexactly(length)
        else:
            body = b""
        return method, path, headers, body

    @staticmethod
    async def _read_line(
        reader: asyncio.StreamReader, timeout: float | None
    ) -> bytes:
        try:
            if timeout is not None:
                return await asyncio.wait_for(reader.readline(), timeout)
            return await reader.readline()
        except ValueError:
            # StreamReader's internal line-length limit: a header line
            # this long is over any sane budget.
            raise _HttpLimitError(431, "request header line too long") from None

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        payload: bytes,
        extra_headers: dict[str, str],
        keep_alive: bool,
    ) -> None:
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in extra_headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + payload)


def _fmt_retry(seconds: float) -> str:
    """Retry-After value: fractional seconds, trimmed for whole numbers."""
    return (
        str(int(seconds))
        if float(seconds).is_integer()
        else f"{seconds:.3f}"
    )
