"""The asyncio prediction service: state, batching, cache, HTTP front.

Two layers:

* :class:`PredictionService` — the protocol-free application core.  It
  owns the fleet, the per-object :class:`~repro.core.online.OnlineTracker`
  ingest state, the prediction cache, the request batcher, and the
  metrics registry.  Model passes are CPU work and run on the event
  loop's default executor; all shared state is guarded by the fleet's
  per-object locks (see the concurrency contract in
  :mod:`repro.core.fleet`), so the loop stays responsive and correct.
* :class:`PredictionServer` — a minimal stdlib HTTP/1.1 front-end over
  ``asyncio.start_server`` (keep-alive, Content-Length framing; no
  chunked encoding, TLS, or HTTP/2 — put a real proxy in front for
  that).  Routing and wire format live in :mod:`repro.serve.handlers`.

Typical embedding (the ``repro serve`` CLI does exactly this)::

    fleet = FleetPredictionModel(config)
    fleet.fit({"bus42": history})
    service = PredictionService(fleet, ServeConfig())
    server = PredictionServer(service, host="0.0.0.0", port=8080)
    asyncio.run(server.run_forever())
"""

from __future__ import annotations

import asyncio
import time
from contextlib import suppress
from dataclasses import dataclass

from ..core.fleet import FleetPredictionModel
from ..core.online import OnlineTracker
from ..trajectory.point import TimedPoint
from .batching import RequestBatcher
from .cache import PredictionCache
from .handlers import ApiError, route
from .metrics import FIT_PHASE_BUCKETS, FIT_PHASES, MetricsRegistry

__all__ = ["ServeConfig", "PredictionService", "PredictionServer"]


@dataclass(frozen=True)
class ServeConfig:
    """Operator-tunable serving knobs (CLI flags map 1:1 onto these)."""

    cache_entries: int = 4096
    cache_ttl: float | None = 30.0
    cache_quantum: float = 1.0
    max_batch: int = 32
    batch_delay: float = 0.002
    update_after: int | None = None
    enable_cache: bool = True
    enable_batching: bool = True


class PredictionService:
    """Application core behind the HTTP handlers.

    Parameters
    ----------
    fleet:
        Fitted per-object models (a single-model deployment is a fleet
        of one).  The service binds its metrics registry to the fleet,
        instrumenting every model's predict hot path.
    config:
        Serving knobs; ``ServeConfig()`` defaults are sensible.
    metrics:
        Optional shared registry (a fresh one is created by default).
    """

    def __init__(
        self,
        fleet: FleetPredictionModel,
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.fleet = fleet
        self.config = config or ServeConfig()
        self.metrics = metrics or MetricsRegistry()
        fleet.bind_metrics(self.metrics)
        # Register the fit-phase histograms with fit-scale buckets before
        # any name-only get-or-create can claim them with latency buckets.
        for phase in FIT_PHASES:
            self.metrics.histogram(
                f"fit_phase_seconds_{phase}",
                help=f"seconds spent in the {phase} fit phase",
                buckets=FIT_PHASE_BUCKETS,
            )
        # Replay the fleet's recorded fit-phase timings into the registry:
        # warmed-up models were fitted before this registry existed (in a
        # worker, a CLI fit run, or a snapshot write), so /metrics would
        # otherwise never show where their fit time went.
        for object_id in fleet.object_ids():
            model = fleet[object_id]
            model._observe_fit_phases(self.metrics)
        self.cache = PredictionCache(
            max_entries=self.config.cache_entries,
            ttl=self.config.cache_ttl,
            quantum=self.config.cache_quantum,
            metrics=self.metrics,
        )
        self.batcher = RequestBatcher(
            self._execute_batch,
            max_batch=self.config.max_batch,
            max_delay=self.config.batch_delay,
            metrics=self.metrics,
        )
        self.trackers: dict[str, OnlineTracker] = {}
        self._refits: dict[str, asyncio.Task] = {}
        self.metrics.gauge(
            "serve_objects", help="objects with a fitted model"
        ).set(len(fleet))

    @classmethod
    def from_snapshot(
        cls,
        snapshot_dir,
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | None = None,
        warmup_workers: int | None = None,
    ) -> "PredictionService":
        """Build a service from a fleet snapshot directory.

        ``warmup_workers`` parallelises the per-object archive loads
        (see :func:`repro.core.persistence.load_fleet`) so a large
        snapshot warms up in a fraction of the serial time before the
        first request is accepted.
        """
        from ..core.persistence import load_fleet

        fleet = load_fleet(snapshot_dir, max_workers=warmup_workers)
        return cls(fleet, config, metrics)

    # ------------------------------------------------------------------
    # predict path
    # ------------------------------------------------------------------
    async def predict(
        self,
        object_id: str,
        recent: list[tuple[int, float, float]] | None,
        query_time: int,
        k: int | None = None,
    ):
        """Answer one predictive query; returns ``(predictions, cached)``."""
        if object_id not in self.fleet:
            raise ApiError(404, f"unknown object {object_id!r}")
        if recent is not None:
            window = [TimedPoint(t, x, y) for t, x, y in recent]
        else:
            tracker = self.trackers.get(object_id)
            if tracker is None or not tracker.window:
                raise ApiError(
                    400,
                    f"no recent movements supplied and object {object_id!r} "
                    "has no ingested fixes",
                )
            window = tracker.window
        self.metrics.counter("serve_predict_requests_total").inc()

        key = self.cache.make_key(object_id, window, query_time, k)
        if self.config.enable_cache:
            hit = self.cache.get(key)
            if hit is not None:
                return hit, True

        request = (tuple(p.as_tuple() for p in window), query_time, k)
        if self.config.enable_batching:
            predictions = await self.batcher.submit(object_id, request)
        else:
            predictions = (
                await asyncio.get_running_loop().run_in_executor(
                    None, self._execute_batch, object_id, [request]
                )
            )[0]
        if self.config.enable_cache:
            self.cache.put(key, predictions)
        return predictions, False

    def _execute_batch(self, object_id: str, requests):
        """One model pass for a whole batch (runs on the executor).

        Requests that share a recent window — the common case when a hot
        object is probed at many query times — share one prepared query
        plan, so region mapping, premise-key encoding and motion-function
        fitting happen once per distinct window instead of once per
        request.  Answers are byte-identical to per-request
        ``fleet.predict`` calls.
        """
        results = []
        # One lock acquisition covers the whole batch.
        with self.fleet.object_lock(object_id):
            model = self.fleet[object_id]
            plans: dict = {}
            for recent_tuple, query_time, k in requests:
                plan = plans.get(recent_tuple)
                if plan is None:
                    window = [TimedPoint(t, x, y) for t, x, y in recent_tuple]
                    plan = plans[recent_tuple] = model.prepare(window)
                results.append(model.predict_prepared(plan, query_time, k))
        self.metrics.counter("fleet_predict_total").inc(len(requests))
        return results

    # ------------------------------------------------------------------
    # ingest path
    # ------------------------------------------------------------------
    async def ingest(
        self, object_id: str, fixes: list[tuple[int, float, float]]
    ) -> dict:
        """Stream fixes into the object's tracker; maybe schedule a refit."""
        if object_id not in self.fleet:
            raise ApiError(404, f"unknown object {object_id!r}")
        tracker = self.trackers.get(object_id)
        if tracker is None:
            tracker = OnlineTracker(
                self.fleet[object_id],
                update_after=self.config.update_after,
                lock=self.fleet.object_lock(object_id),
            )
            self.trackers[object_id] = tracker
        for t, x, y in fixes:
            tracker.observe(t, x, y)
        self.metrics.counter("serve_ingest_fixes_total").inc(len(fixes))
        # Stale the object's cached answers: the window has moved.
        self.cache.invalidate(object_id)

        refit_scheduled = False
        if tracker.update_due and object_id not in self._refits:
            task = asyncio.get_running_loop().create_task(
                self._refit(object_id, tracker)
            )
            self._refits[object_id] = task
            refit_scheduled = True
        return {
            "object_id": object_id,
            "accepted": len(fixes),
            "pending": tracker.pending_count,
            "window": len(tracker.window),
            "refit_scheduled": refit_scheduled,
        }

    async def _refit(self, object_id: str, tracker: OnlineTracker) -> None:
        """Background ``flush_updates`` (the paper's dynamic-update path)."""
        start = time.perf_counter()
        try:
            flushed = await asyncio.get_running_loop().run_in_executor(
                None, tracker.flush_updates
            )
        except Exception:
            self.metrics.counter("serve_refit_errors_total").inc()
            raise
        finally:
            self._refits.pop(object_id, None)
        self.metrics.counter("serve_refits_total").inc()
        self.metrics.counter("serve_refit_fixes_total").inc(flushed)
        self.metrics.histogram("serve_refit_seconds").observe(
            time.perf_counter() - start
        )
        # The refreshed corpus may answer differently.
        self.cache.invalidate(object_id)

    async def drain(self) -> None:
        """Complete pending batches and refits (shutdown/tests)."""
        await self.batcher.drain()
        for task in list(self._refits.values()):
            with suppress(Exception):
                await task

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def objects_summary(self) -> list[dict]:
        rows = []
        for object_id in self.fleet.object_ids():
            model = self.fleet[object_id]
            tracker = self.trackers.get(object_id)
            rows.append(
                {
                    "object_id": object_id,
                    "patterns": model.pattern_count,
                    "regions": len(model.regions_),
                    "window": len(tracker.window) if tracker else 0,
                    "pending": tracker.pending_count if tracker else 0,
                }
            )
        return rows


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}

_METRIC_PATHS = {"/predict", "/ingest", "/objects", "/healthz", "/metrics"}


class PredictionServer:
    """Keep-alive HTTP/1.1 front-end for a :class:`PredictionService`."""

    def __init__(
        self,
        service: PredictionService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()

    async def start(self) -> None:
        """Bind and start accepting; ``port=0`` picks an ephemeral port."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting, drain in-flight work, drop connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.drain()
        for writer in list(self._connections):
            writer.close()
        self._connections.clear()
        for task in list(self._handlers):
            task.cancel()
        await asyncio.gather(*self._handlers, return_exceptions=True)
        self._handlers.clear()

    async def run_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        finally:
            await self.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        metrics = self.service.metrics
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                started = time.perf_counter()
                try:
                    status, ctype, payload, extra = await route(
                        self.service, method, path, body
                    )
                except Exception as exc:  # handler bug: answer, keep serving
                    metrics.counter("serve_http_errors_total").inc()
                    status, ctype, extra = 500, "application/json", {}
                    payload = (
                        b'{"error":"internal server error: '
                        + type(exc).__name__.encode("ascii", "replace")
                        + b'"}'
                    )
                metrics.counter("serve_http_requests_total").inc()
                bare = path.split("?", 1)[0]
                if bare in _METRIC_PATHS:
                    metrics.counter(
                        f"serve_http_requests_total_{bare.strip('/')}"
                    ).inc()
                metrics.histogram("serve_http_request_seconds").observe(
                    time.perf_counter() - started
                )
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                self._write_response(
                    writer, status, ctype, payload, extra, keep_alive
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        except asyncio.CancelledError:
            # Server shutdown: end the connection quietly instead of
            # letting the cancellation escape into asyncio's protocol
            # callback (which would log it as an error).
            pass
        finally:
            if task is not None:
                self._handlers.discard(task)
            self._connections.discard(writer)
            writer.close()
            with suppress(Exception):
                await writer.wait_closed()

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        payload: bytes,
        extra_headers: dict[str, str],
        keep_alive: bool,
    ) -> None:
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in extra_headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + payload)
