"""repro.serve.shard — sharded multi-process serving.

Scales :mod:`repro.serve` past one CPU by partitioning the fleet over
``N`` shard-worker processes behind a router front-end:

* :class:`~repro.serve.shard.ring.HashRing` — deterministic consistent
  hashing of object ids onto shards (the single source of placement
  truth for the router, the workers, and snapshot splitting);
* :mod:`~repro.serve.shard.snapshot` — split a fleet snapshot into
  per-shard snapshots and merge them back;
* :mod:`~repro.serve.shard.worker` — one shard-worker process: the
  existing :class:`~repro.serve.server.PredictionService` over the
  shard's slice of the fleet, speaking the same JSON-over-HTTP protocol
  on a local socket;
* :mod:`~repro.serve.shard.forwarding` — bounded per-shard forwarding
  queues with priority, eviction, and watermark backpressure;
* :mod:`~repro.serve.shard.router` — the router: admission-controlled
  HTTP front-end that forwards single-object requests to the owning
  shard byte-for-byte, scatter-gathers fleet-wide requests, aggregates
  shard metrics, and degrades (stale cache → 503 + Retry-After) when a
  shard is down;
* :mod:`~repro.serve.shard.cluster` — worker lifecycle: spawn,
  readiness, crash restart with backoff, graceful SIGTERM drain.

Run a sharded deployment from the CLI::

    repro fit bus*.csv -o fleet_snapshot --period 24
    repro shard-serve fleet_snapshot --shards 4 --port 8080
    repro loadgen 127.0.0.1:8080 --input bus1.csv --requests 2000

With every shard healthy the router's responses are byte-identical to a
single-process ``repro serve`` over the same snapshot
(``benchmarks/bench_serve_shard.py`` proves it with SHA-256
fingerprints).
"""

from .cluster import ShardCluster, WorkerHandle
from .forwarding import (
    ForwardQueue,
    QueueFullError,
    ShardForwarder,
    ShardTransportError,
)
from .ring import HashRing
from .router import RouterConfig, RouterServer, RouterService
from .snapshot import (
    SHARD_MANIFEST,
    merge_snapshot,
    read_shard_manifest,
    split_snapshot,
)
from .worker import load_shard_fleet, run_worker

__all__ = [
    "ForwardQueue",
    "HashRing",
    "QueueFullError",
    "RouterConfig",
    "RouterServer",
    "RouterService",
    "SHARD_MANIFEST",
    "ShardCluster",
    "ShardForwarder",
    "ShardTransportError",
    "WorkerHandle",
    "load_shard_fleet",
    "merge_snapshot",
    "read_shard_manifest",
    "run_worker",
    "split_snapshot",
]
