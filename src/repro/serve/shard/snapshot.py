"""Split a fleet snapshot into per-shard snapshots, and merge back.

A **sharded snapshot** is a directory of ``shard_NNNN/`` fleet
snapshots (each loadable by :func:`repro.core.persistence.load_fleet`
on its own) plus a top-level ``shard_manifest.json`` recording the
consistent-hash ring parameters the split was computed with.  Workers
given a sharded snapshot load their ``shard_NNNN`` directly; the router
reads the manifest and builds the *same* ring, so placement on disk and
placement in traffic can never disagree.

Splitting never deserialises a model.  v1 sources copy the per-object
``.npz`` archives byte-for-byte; v2 (packed columnar) sources repack
each shard's block slices with
:func:`repro.core.snapshot2.repack_snapshot_subset`, so every
``shard_NNNN`` is itself a v2 snapshot the worker can mmap.
``merge_snapshot`` reverses a split into a plain fleet snapshot —
positional archive renames for v1, block concatenation via
:func:`repro.core.snapshot2.merge_packed_snapshots` for v2 — in sorted
object-id order so the result is deterministic regardless of how the
shards were laid out.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

from ...core.config import HPMConfig
from ...core.snapshot2 import (
    FLEET_FORMAT_V2,
    merge_packed_snapshots,
    repack_snapshot_subset,
)
from .ring import DEFAULT_REPLICAS, HashRing

__all__ = [
    "SHARD_MANIFEST",
    "split_snapshot",
    "merge_snapshot",
    "read_shard_manifest",
    "ring_from_manifest",
    "shard_dir_name",
]

SHARD_MANIFEST = "shard_manifest.json"
_SHARD_FORMAT_VERSION = 1
_FLEET_MANIFEST = "manifest.json"


def shard_dir_name(shard_id: int) -> str:
    return f"shard_{shard_id:04d}"


def _read_fleet_manifest(directory: Path) -> dict:
    manifest_path = directory / _FLEET_MANIFEST
    if not manifest_path.is_file():
        raise ValueError(
            f"{directory} is not a fleet snapshot (no {_FLEET_MANIFEST})"
        )
    return json.loads(manifest_path.read_text())


def split_snapshot(
    source: str | Path,
    output: str | Path,
    num_shards: int,
    replicas: int = DEFAULT_REPLICAS,
    salt: str = "hpm-ring",
) -> dict[int, list[str]]:
    """Split a fleet snapshot into ``num_shards`` per-shard snapshots.

    Returns the placement (shard id → sorted object ids).  Shards that
    own no objects still get a valid (empty) snapshot directory, so a
    worker can always start against its slice.
    """
    source = Path(source)
    output = Path(output)
    manifest = _read_fleet_manifest(source)
    packed = manifest.get("format_version") == FLEET_FORMAT_V2
    ring = HashRing(num_shards, replicas=replicas, salt=salt)
    groups = ring.assignments(manifest["objects"].keys())

    output.mkdir(parents=True, exist_ok=True)
    placement: dict[int, list[str]] = {}
    for shard_id in range(num_shards):
        shard_dir = output / shard_dir_name(shard_id)
        shard_ids = sorted(groups[shard_id])
        if packed:
            repack_snapshot_subset(source, shard_dir, shard_ids)
        else:
            shard_dir.mkdir(parents=True, exist_ok=True)
            objects: dict[str, str] = {}
            for object_id in shard_ids:
                filename = manifest["objects"][object_id]
                shutil.copy2(source / filename, shard_dir / filename)
                objects[object_id] = filename
            shard_manifest = {
                "format_version": manifest["format_version"],
                "config": manifest["config"],
                "objects": objects,
            }
            (shard_dir / _FLEET_MANIFEST).write_text(
                json.dumps(shard_manifest, indent=2)
            )
        placement[shard_id] = shard_ids

    top = {
        "format_version": _SHARD_FORMAT_VERSION,
        "num_shards": num_shards,
        "replicas": replicas,
        "salt": salt,
        "shards": [shard_dir_name(s) for s in range(num_shards)],
        "objects_total": len(manifest["objects"]),
    }
    (output / SHARD_MANIFEST).write_text(json.dumps(top, indent=2))
    return placement


def read_shard_manifest(directory: str | Path) -> dict:
    """Read and validate a sharded snapshot's top-level manifest."""
    path = Path(directory) / SHARD_MANIFEST
    if not path.is_file():
        raise ValueError(
            f"{directory} is not a sharded snapshot (no {SHARD_MANIFEST})"
        )
    manifest = json.loads(path.read_text())
    if manifest.get("format_version") != _SHARD_FORMAT_VERSION:
        raise ValueError(
            f"{directory}: unsupported sharded-snapshot format "
            f"{manifest.get('format_version')}"
        )
    return manifest


def ring_from_manifest(manifest: dict) -> HashRing:
    """The ring a sharded snapshot was split with."""
    return HashRing(
        manifest["num_shards"],
        replicas=manifest["replicas"],
        salt=manifest["salt"],
    )


def merge_snapshot(source: str | Path, output: str | Path) -> list[str]:
    """Merge a sharded snapshot back into one plain fleet snapshot.

    Returns the merged object ids (sorted).  Shard configs must agree;
    v1 archives are copied and renamed positionally in sorted object-id
    order, matching the layout :func:`repro.core.persistence.save_fleet`
    would produce; v2 shards have their blocks re-concatenated in the
    same order.  Mixed-format shards raise.
    """
    source = Path(source)
    output = Path(output)
    manifest = read_shard_manifest(source)

    shard_dirs = [source / name for name in manifest["shards"]]
    versions = {
        _read_fleet_manifest(d).get("format_version") for d in shard_dirs
    }
    if len(versions) > 1:
        raise ValueError(
            f"{source}: shards mix snapshot formats {sorted(versions)}"
        )
    if versions == {FLEET_FORMAT_V2}:
        return merge_packed_snapshots(shard_dirs, output)

    merged: dict[str, Path] = {}
    config: dict | None = None
    format_version = None
    for shard_dir in shard_dirs:
        shard_manifest = _read_fleet_manifest(shard_dir)
        if config is None:
            config = shard_manifest["config"]
            format_version = shard_manifest["format_version"]
            # Validate once so a corrupted shard config fails loudly.
            HPMConfig(**config)
        elif shard_manifest["config"] != config:
            raise ValueError(
                f"{shard_dir}: shard config differs from the other shards'"
            )
        for object_id, filename in shard_manifest["objects"].items():
            if object_id in merged:
                raise ValueError(
                    f"object id {object_id!r} appears in more than one shard"
                )
            merged[object_id] = shard_dir / filename

    output.mkdir(parents=True, exist_ok=True)
    objects: dict[str, str] = {}
    for index, object_id in enumerate(sorted(merged)):
        filename = f"object_{index:04d}.npz"
        shutil.copy2(merged[object_id], output / filename)
        objects[object_id] = filename
    (output / _FLEET_MANIFEST).write_text(
        json.dumps(
            {
                "format_version": format_version,
                "config": config,
                "objects": objects,
            },
            indent=2,
        )
    )
    return sorted(merged)
