"""Per-shard forwarding: bounded priority queues + connection pumps.

The router must never let one slow or dead shard absorb unbounded
memory or drag every other shard's traffic down.  Each shard gets:

* a :class:`ForwardQueue` — a bounded priority queue with the same
  traffic philosophy as the PR 6 admission controller, applied per
  shard: predicts outrank ingests outrank background scatter work;
  above a high watermark the queue sheds lower-priority arrivals until
  depth falls to the low watermark (hysteresis); at capacity a
  higher-priority arrival **evicts** the newest lowest-priority queued
  job (which fails fast with a shed) instead of being refused.
* a :class:`ShardForwarder` — a small pool of pump tasks, each owning
  one keep-alive HTTP connection to the worker, draining the queue in
  priority order.  Transport failures reconnect and retry once for
  idempotent predict-class jobs; ingest jobs fail straight back to the
  caller (a blind retry could double-apply fixes).

Every job resolves: forwarded, evicted, shed, failed on transport, or
cancelled at shutdown.  Nothing is silently dropped.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field

from ..loadgen import HttpClient

__all__ = [
    "FORWARD_PRIORITIES",
    "ForwardJob",
    "ForwardQueue",
    "QueueFullError",
    "ShardForwarder",
    "ShardTransportError",
]

#: job priorities, lower number = served first
FORWARD_PRIORITIES = {"predict": 0, "ingest": 1, "background": 2}


class QueueFullError(Exception):
    """The shard's forwarding queue refused the job (shed/evicted)."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class ShardTransportError(Exception):
    """The worker connection failed and the job could not be retried."""


@dataclass
class ForwardJob:
    priority: int
    method: str
    path: str
    body: bytes
    headers: dict[str, str] | None = None
    future: asyncio.Future = field(default_factory=lambda: asyncio.get_event_loop().create_future())

    @property
    def retryable(self) -> bool:
        """Only predict-class jobs are safe to replay after a transport
        failure — re-sending an ingest could double-apply fixes."""
        return self.priority == FORWARD_PRIORITIES["predict"]


class ForwardQueue:
    """Bounded priority queue with eviction and watermark backpressure."""

    def __init__(
        self,
        max_depth: int = 128,
        high_watermark: int | None = None,
        low_watermark: int | None = None,
    ):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.high_watermark = (
            high_watermark if high_watermark is not None else (3 * max_depth) // 4
        )
        self.low_watermark = (
            low_watermark if low_watermark is not None else max_depth // 4
        )
        if not 0 <= self.low_watermark <= self.high_watermark <= max_depth:
            raise ValueError(
                f"need 0 <= low ({self.low_watermark}) <= high "
                f"({self.high_watermark}) <= max_depth ({max_depth})"
            )
        self._entries: list[tuple[int, int, ForwardJob]] = []
        self._seq = itertools.count()
        self._available = asyncio.Event()
        self._shedding = False
        self._closed = False
        self.stats = {
            "offered": 0,
            "shed_watermark": 0,
            "shed_full": 0,
            "evicted": 0,
        }

    def depth(self) -> int:
        return len(self._entries)

    @property
    def shedding(self) -> bool:
        return self._shedding

    def offer(self, job: ForwardJob) -> None:
        """Enqueue ``job`` or raise :class:`QueueFullError`.

        An eviction fails the victim's future with ``QueueFullError``
        ("evicted"), so its waiter gets an immediate shed response
        rather than a timeout.
        """
        if self._closed:
            raise QueueFullError("queue closed")
        self.stats["offered"] += 1
        depth = len(self._entries)
        # Watermark hysteresis on queue depth, mirroring the admission
        # controller: once over high, lower-priority work is shed until
        # depth decays to low.
        if self._shedding and depth <= self.low_watermark:
            self._shedding = False
        if depth >= self.high_watermark:
            self._shedding = True
        if self._shedding and job.priority > FORWARD_PRIORITIES["predict"]:
            self.stats["shed_watermark"] += 1
            raise QueueFullError("watermark")
        if depth >= self.max_depth:
            victim_index = self._worst_index()
            victim = (
                self._entries[victim_index][2]
                if victim_index is not None
                else None
            )
            if victim is None or victim.priority <= job.priority:
                self.stats["shed_full"] += 1
                raise QueueFullError("queue full")
            del self._entries[victim_index]
            self.stats["evicted"] += 1
            if not victim.future.done():
                victim.future.set_exception(QueueFullError("evicted"))
        self._entries.append((job.priority, next(self._seq), job))
        self._entries.sort(key=lambda entry: entry[:2])
        self._available.set()

    def _worst_index(self) -> int | None:
        """The newest lowest-priority live entry (the eviction victim)."""
        worst: tuple[int, int] | None = None
        worst_index: int | None = None
        for i, (priority, seq, job) in enumerate(self._entries):
            if job.future.done():
                continue
            key = (priority, seq)
            if worst is None or key > worst:
                worst, worst_index = key, i
        return worst_index

    async def take(self) -> ForwardJob:
        """Wait for and remove the highest-priority oldest live job."""
        while True:
            while not self._entries:
                if self._closed:
                    raise asyncio.CancelledError
                self._available.clear()
                await self._available.wait()
            _, _, job = self._entries.pop(0)
            if job.future.done():
                continue  # evicted or abandoned while queued
            return job

    def close(self) -> None:
        """Refuse new work and fail everything still queued."""
        self._closed = True
        for _, _, job in self._entries:
            if not job.future.done():
                job.future.set_exception(QueueFullError("queue closed"))
        self._entries.clear()
        self._available.set()


class ShardForwarder:
    """Pump a shard's :class:`ForwardQueue` over pooled connections."""

    def __init__(
        self,
        shard_id: int,
        host: str,
        port: int,
        *,
        queue: ForwardQueue | None = None,
        concurrency: int = 4,
        metrics=None,
    ):
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self.shard_id = shard_id
        self.host = host
        self.port = port
        self.queue = queue or ForwardQueue()
        self.concurrency = concurrency
        self.metrics = metrics
        self._pumps: list[asyncio.Task] = []
        self._stopped = False

    def start(self) -> None:
        if self._pumps:
            raise RuntimeError(f"forwarder for shard {self.shard_id} already started")
        self._pumps = [
            asyncio.ensure_future(self._pump())
            for _ in range(self.concurrency)
        ]

    async def submit(
        self,
        method: str,
        path: str,
        body: bytes,
        *,
        priority: str = "predict",
        headers: dict[str, str] | None = None,
        timeout: float | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """Forward one request; returns ``(status, headers, body)``.

        Raises :class:`QueueFullError` when the shard's queue sheds the
        job and :class:`ShardTransportError` (or ``TimeoutError``) when
        the worker cannot be reached.
        """
        if self._stopped:
            raise ShardTransportError(f"shard {self.shard_id} forwarder stopped")
        job = ForwardJob(
            priority=FORWARD_PRIORITIES[priority],
            method=method,
            path=path,
            body=body,
            headers=headers,
            future=asyncio.get_running_loop().create_future(),
        )
        self.queue.offer(job)
        self._count("router_forward_total")
        started = time.perf_counter()
        try:
            if timeout is not None:
                result = await asyncio.wait_for(
                    asyncio.shield(job.future), timeout
                )
            else:
                result = await job.future
        except (asyncio.TimeoutError, TimeoutError):
            # Stop a pump from wasting a connection turn on it later.
            if not job.future.done():
                job.future.cancel()
            self._count("router_forward_timeout_total")
            raise
        if self.metrics is not None:
            self.metrics.histogram("router_forward_seconds").observe(
                time.perf_counter() - started
            )
        return result

    async def _pump(self) -> None:
        client = HttpClient(self.host, self.port)
        try:
            while not self._stopped:
                try:
                    job = await self.queue.take()
                except asyncio.CancelledError:
                    return
                await self._run_job(client, job)
        finally:
            await client.close()

    async def _run_job(self, client: HttpClient, job: ForwardJob) -> None:
        attempts = 2 if job.retryable else 1
        for attempt in range(attempts):
            try:
                result = await client.request_raw(
                    job.method, job.path, job.body, headers=job.headers
                )
            except (
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
                EOFError,
            ) as exc:
                await client.close()
                self._count("router_forward_transport_errors_total")
                if attempt + 1 < attempts and not job.future.done():
                    self._count("router_forward_retries_total")
                    continue
                if not job.future.done():
                    job.future.set_exception(
                        ShardTransportError(
                            f"shard {self.shard_id} "
                            f"({self.host}:{self.port}): {exc!r}"
                        )
                    )
                return
            if not job.future.done():
                job.future.set_result(result)
            return

    async def stop(self) -> None:
        """Fail queued jobs, cancel pumps, close connections."""
        self._stopped = True
        self.queue.close()
        for pump in self._pumps:
            pump.cancel()
        await asyncio.gather(*self._pumps, return_exceptions=True)
        self._pumps.clear()

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()
            self.metrics.counter(f"{name}_shard_{self.shard_id}").inc()
