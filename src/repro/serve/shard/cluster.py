"""Worker lifecycle: spawn, readiness, crash restart, graceful stop.

:class:`ShardCluster` supervises ``num_shards`` worker *processes*
(``python -m repro shard-worker``) the way an init system would:

* **spawn** — each worker gets the snapshot path, its shard id, the
  ring parameters, ``--port 0`` and a private ready-file; stdout/stderr
  land in per-shard log files under the run directory.
* **readiness** — the supervisor polls for the ready-file the worker
  writes *after* binding; its content is the bound ephemeral port.  A
  worker that dies before becoming ready fails ``start()`` with the
  tail of its log, not a timeout mystery.
* **crash restart** — a supervisor task notices exits, reports the
  shard down (the router flips it to the degradation ladder), respawns
  with exponential backoff, and reports the new address once ready
  (the router attaches a fresh forwarder to the new port).
* **graceful stop** — SIGTERM to every worker (they drain in-flight
  batches and refits via the server's graceful-shutdown path), a grace
  period, then SIGKILL for stragglers.

Restart recovery cost is dominated by the snapshot reload.  With a v2
(packed columnar) snapshot each worker memory-maps the shared blocks
and loads only its ring slice's pages, so co-located workers share the
page cache and a respawned worker is answering again ~4.7x sooner than
from a v1 snapshot (``BENCH_snapshot.json``); pass
``--worker-arg=--no-mmap`` through :class:`ShardCluster`'s extra args
to force private materialised copies instead.

The ``on_ready(shard_id, host, port)`` / ``on_down(shard_id)``
callbacks are how the cluster and a
:class:`~repro.serve.shard.router.RouterService` compose without either
importing the other.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from .ring import DEFAULT_REPLICAS

__all__ = ["WorkerHandle", "ShardCluster"]


@dataclass
class WorkerHandle:
    """One supervised worker process and its bookkeeping."""

    shard_id: int
    process: subprocess.Popen
    ready_file: Path
    log_path: Path
    port: int | None = None
    restarts: int = 0
    log_handle: object = field(default=None, repr=False)

    @property
    def alive(self) -> bool:
        return self.process.poll() is None


class ShardCluster:
    """Spawn and supervise the shard-worker fleet for one snapshot."""

    def __init__(
        self,
        snapshot: str | Path,
        num_shards: int,
        *,
        host: str = "127.0.0.1",
        replicas: int = DEFAULT_REPLICAS,
        salt: str = "hpm-ring",
        run_dir: str | Path | None = None,
        worker_args: list[str] | tuple[str, ...] = (),
        python: str = sys.executable,
        ready_timeout: float = 60.0,
        restart_backoff: float = 0.5,
        max_backoff: float = 10.0,
        on_ready: Callable[[int, str, int], None] | None = None,
        on_down: Callable[[int], None] | None = None,
    ):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.snapshot = Path(snapshot)
        self.num_shards = num_shards
        self.host = host
        self.replicas = replicas
        self.salt = salt
        self.worker_args = list(worker_args)
        self.python = python
        self.ready_timeout = ready_timeout
        self.restart_backoff = restart_backoff
        self.max_backoff = max_backoff
        self.on_ready = on_ready
        self.on_down = on_down
        if run_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-shards-")
            self.run_dir = Path(self._tmp.name)
        else:
            self._tmp = None
            self.run_dir = Path(run_dir)
            self.run_dir.mkdir(parents=True, exist_ok=True)
        self.workers: dict[int, WorkerHandle] = {}
        self._supervisor: asyncio.Task | None = None
        self._stopping = False

    # ------------------------------------------------------------------
    # spawning
    # ------------------------------------------------------------------
    def _spawn(self, shard_id: int, restarts: int = 0) -> WorkerHandle:
        ready_file = self.run_dir / f"shard_{shard_id}.ready"
        ready_file.unlink(missing_ok=True)
        log_path = self.run_dir / f"shard_{shard_id}.log"
        command = [
            self.python,
            "-m",
            "repro",
            "shard-worker",
            str(self.snapshot),
            "--shard-id",
            str(shard_id),
            "--shards",
            str(self.num_shards),
            "--host",
            self.host,
            "--port",
            "0",
            "--ready-file",
            str(ready_file),
            "--replicas",
            str(self.replicas),
            "--salt",
            self.salt,
            *self.worker_args,
        ]
        # The workers must import *this* repro, wherever the supervisor
        # loaded it from, regardless of the caller's cwd/PYTHONPATH.
        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            src_dir + ((":" + env["PYTHONPATH"]) if env.get("PYTHONPATH") else "")
        )
        log_handle = open(log_path, "ab")
        process = subprocess.Popen(
            command,
            stdout=log_handle,
            stderr=subprocess.STDOUT,
            env=env,
            start_new_session=True,  # a Ctrl-C aimed at the router stays there
        )
        return WorkerHandle(
            shard_id=shard_id,
            process=process,
            ready_file=ready_file,
            log_path=log_path,
            restarts=restarts,
            log_handle=log_handle,
        )

    async def _wait_ready(self, handle: WorkerHandle) -> None:
        deadline = asyncio.get_running_loop().time() + self.ready_timeout
        while True:
            if handle.ready_file.is_file():
                text = handle.ready_file.read_text().strip()
                if text:
                    handle.port = int(text)
                    return
            if not handle.alive:
                raise RuntimeError(
                    f"shard {handle.shard_id} worker exited with "
                    f"{handle.process.returncode} before becoming ready\n"
                    f"--- log tail ({handle.log_path}) ---\n"
                    f"{self._log_tail(handle)}"
                )
            if asyncio.get_running_loop().time() > deadline:
                raise TimeoutError(
                    f"shard {handle.shard_id} worker not ready within "
                    f"{self.ready_timeout}s\n"
                    f"--- log tail ({handle.log_path}) ---\n"
                    f"{self._log_tail(handle)}"
                )
            await asyncio.sleep(0.05)

    @staticmethod
    def _log_tail(handle: WorkerHandle, lines: int = 20) -> str:
        try:
            text = handle.log_path.read_text(errors="replace")
        except OSError:
            return "(no log)"
        return "\n".join(text.splitlines()[-lines:])

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn every worker, wait until all are ready, begin supervising."""
        if self.workers:
            raise RuntimeError("cluster already started")
        for shard_id in range(self.num_shards):
            self.workers[shard_id] = self._spawn(shard_id)
        try:
            await asyncio.gather(
                *(self._wait_ready(h) for h in self.workers.values())
            )
        except BaseException:
            await self.stop(grace=1.0)
            raise
        for handle in self.workers.values():
            if self.on_ready is not None:
                self.on_ready(handle.shard_id, self.host, handle.port)
        self._supervisor = asyncio.ensure_future(self._supervise())

    async def _supervise(self) -> None:
        while not self._stopping:
            await asyncio.sleep(0.2)
            for shard_id, handle in list(self.workers.items()):
                if handle.alive or self._stopping:
                    continue
                if self.on_down is not None:
                    self.on_down(shard_id)
                self._close_log(handle)
                backoff = min(
                    self.restart_backoff * (2**handle.restarts),
                    self.max_backoff,
                )
                await asyncio.sleep(backoff)
                if self._stopping:
                    return
                replacement = self._spawn(shard_id, restarts=handle.restarts + 1)
                self.workers[shard_id] = replacement
                try:
                    await self._wait_ready(replacement)
                except (RuntimeError, TimeoutError):
                    # Exited again before ready: the next sweep retries
                    # with a longer backoff.
                    continue
                if self.on_ready is not None:
                    self.on_ready(shard_id, self.host, replacement.port)

    def kill_worker(self, shard_id: int, sig: int = signal.SIGKILL) -> None:
        """Failure drill: kill one worker and let supervision recover it."""
        handle = self.workers[shard_id]
        if handle.alive:
            handle.process.send_signal(sig)

    async def stop(self, grace: float = 10.0) -> dict[int, int]:
        """SIGTERM everyone, wait up to ``grace``, SIGKILL stragglers.

        Returns each shard's final exit code.
        """
        self._stopping = True
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
            self._supervisor = None
        for handle in self.workers.values():
            if handle.alive:
                handle.process.terminate()
        deadline = asyncio.get_running_loop().time() + grace
        while any(h.alive for h in self.workers.values()):
            if asyncio.get_running_loop().time() > deadline:
                for handle in self.workers.values():
                    if handle.alive:
                        handle.process.kill()
                break
            await asyncio.sleep(0.05)
        codes: dict[int, int] = {}
        for shard_id, handle in sorted(self.workers.items()):
            codes[shard_id] = handle.process.wait()
            self._close_log(handle)
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None
        return codes

    @staticmethod
    def _close_log(handle: WorkerHandle) -> None:
        if handle.log_handle is not None:
            try:
                handle.log_handle.close()
            except OSError:
                pass
            handle.log_handle = None

    def addresses(self) -> dict[int, tuple[str, int]]:
        """Shard id → (host, port) for every worker that reached ready."""
        return {
            shard_id: (self.host, handle.port)
            for shard_id, handle in sorted(self.workers.items())
            if handle.port is not None
        }
