"""Consistent hashing of object ids onto shards.

The ring is the single source of placement truth for the whole sharded
stack: the router uses it to pick a forwarding target, each worker uses
it to decide which slice of a fleet snapshot to load, and
``repro shard-snapshot`` uses it to split snapshots on disk — so all
three always agree without coordination.

Properties the rest of the subsystem leans on:

* **Deterministic across processes.**  Placement is derived from SHA-1
  digests, never from Python's randomized ``hash()``, so a router and a
  worker started in different interpreters (different
  ``PYTHONHASHSEED``) compute identical placements.
* **Uniform.**  Each shard owns ``replicas`` virtual nodes, which keeps
  per-shard key counts within a few tens of percent of the mean for
  realistic fleets (tested in ``tests/serve/test_shard_ring.py``).
* **Bounded remapping.**  Growing ``n`` shards to ``n + 1`` moves only
  the keys captured by the new shard's virtual nodes (≈ ``1/(n+1)`` of
  them); every moved key lands *on the new shard*.  Shrinking moves
  only the removed shard's keys.  This is the classic consistent-hash
  contract — a rebalance re-splits a fraction of the snapshot instead
  of reshuffling everything.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, Sequence

__all__ = ["HashRing"]

#: virtual nodes per shard; more → smoother balance, larger ring
DEFAULT_REPLICAS = 96


def _ring_hash(data: str) -> int:
    """A 64-bit ring coordinate from a SHA-1 digest (hash-seed stable)."""
    digest = hashlib.sha1(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash placement of string keys onto integer shard ids.

    Parameters
    ----------
    num_shards:
        Shards ``0 .. num_shards - 1``.
    replicas:
        Virtual nodes per shard.
    salt:
        Namespace mixed into every digest so independent rings (e.g. a
        test ring and a production ring) never collide by accident.
        Router, workers, and snapshot splits must share a salt.
    """

    def __init__(
        self,
        num_shards: int,
        replicas: int = DEFAULT_REPLICAS,
        salt: str = "hpm-ring",
    ):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.num_shards = num_shards
        self.replicas = replicas
        self.salt = salt
        points: list[tuple[int, int]] = []
        for shard in range(num_shards):
            for replica in range(replicas):
                points.append(
                    (_ring_hash(f"{salt}|node|{shard}|{replica}"), shard)
                )
        # SHA-1 collisions between distinct vnode labels are not a
        # realistic concern; sorting by (point, shard) still keeps the
        # ring deterministic if one ever happened.
        points.sort()
        self._points = [p for p, _ in points]
        self._shards = [s for _, s in points]

    def shard_for(self, key: str) -> int:
        """The shard owning ``key``: first vnode clockwise of its hash."""
        point = _ring_hash(f"{self.salt}|key|{key}")
        index = bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap past the last vnode
        return self._shards[index]

    def assignments(self, keys: Iterable[str]) -> dict[int, list[str]]:
        """Keys grouped by owning shard (every shard present, maybe empty)."""
        groups: dict[int, list[str]] = {s: [] for s in range(self.num_shards)}
        for key in keys:
            groups[self.shard_for(key)].append(key)
        return groups

    def distribution(self, keys: Iterable[str]) -> list[int]:
        """Per-shard key counts (balance diagnostics)."""
        counts = [0] * self.num_shards
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

    def moved_keys(self, other: "HashRing", keys: Sequence[str]) -> list[str]:
        """Keys whose placement differs between this ring and ``other``."""
        return [k for k in keys if self.shard_for(k) != other.shard_for(k)]

    def __repr__(self) -> str:
        return (
            f"HashRing(num_shards={self.num_shards}, "
            f"replicas={self.replicas}, salt={self.salt!r})"
        )
