"""The shard router: one HTTP front door over N shard workers.

:class:`RouterService` duck-types the service surface that
:class:`~repro.serve.server.PredictionServer` drives (``config``,
``metrics``, ``admission``, ``chaos``, ``drain``), so
:class:`RouterServer` inherits the whole hardened HTTP front-end —
keep-alive framing, read limits, slow-loris reaping, admission control
with watermarks and per-client rate limits — and only swaps request
*handling* for request *forwarding*:

* ``POST /predict`` / ``POST /ingest`` — consistent-hash the object id,
  forward the request **byte-for-byte** through the owning shard's
  bounded priority queue, and pass the worker's response bytes straight
  back (plus an ``X-Shard`` header).  With every shard healthy the
  router is a transparent pipe: response bodies are byte-identical to a
  single-process server over the same fleet.
* ``POST /predict_all`` / ``GET /objects`` — scatter to every shard,
  gather, merge in sorted object-id order (the workers render sorted
  slices through the same canonical encoder, so the merged body is
  byte-identical to the single-process answer; a shard outage marks the
  response ``"partial": true`` instead of failing it).
* ``GET /metrics`` — the router's own registry merged with every
  shard's ``/metrics.json`` dump (counters/gauges sum, histograms sum
  per bucket), one fleet-wide Prometheus exposition.
* ``GET /healthz`` — shard health rollup from the background probes.

Failure handling mirrors the PR 6 degradation ladder, one tier up: a
shard that sheds answers ``503 + Retry-After``; a shard that is dead or
unreachable degrades a predict to the router's **stale response cache**
(the last full-quality body served for the same object and request
bytes, replayed with ``"degraded": true``) and only 503s when there is
nothing to fall back on.  Ingests never retry blindly and never serve
stale — they fail fast and honestly.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from contextlib import suppress
from dataclasses import dataclass

from ..admission import AdmissionController
from ..cache import PredictionCache
from ..handlers import ApiError, encode_json, _object_id, _parse_body
from ..loadgen import HttpClient
from ..metrics import MetricsRegistry, merge_dumps
from ..server import PredictionServer, ServeConfig
from .forwarding import ForwardQueue, QueueFullError, ShardForwarder, ShardTransportError
from .ring import DEFAULT_REPLICAS, HashRing

__all__ = ["RouterConfig", "RouterService", "RouterServer"]

_JSON = "application/json"

#: response headers forwarded from a worker back to the client
_PASSTHROUGH_HEADERS = ("x-cache", "x-degraded", "retry-after")


@dataclass(frozen=True)
class RouterConfig:
    """Router-tier knobs (the front-end HTTP/admission knobs stay in
    :class:`~repro.serve.server.ServeConfig`)."""

    #: shard count; must match the worker fleet and any split snapshot
    num_shards: int
    #: consistent-hash virtual nodes per shard
    replicas: int = DEFAULT_REPLICAS
    #: consistent-hash namespace
    salt: str = "hpm-ring"
    #: bounded depth of each shard's forwarding queue
    queue_depth: int = 128
    #: queue depth that trips lower-priority shedding (default 3/4 depth)
    queue_high_watermark: int | None = None
    #: queue depth at which shedding clears (default 1/4 depth)
    queue_low_watermark: int | None = None
    #: keep-alive connections pumping each shard's queue
    pump_concurrency: int = 4
    #: seconds a forwarded request may wait end-to-end before failover
    forward_timeout: float = 15.0
    #: seconds between health probes per shard
    probe_interval: float = 0.25
    #: per-probe timeout
    probe_timeout: float = 1.0
    #: consecutive probe failures before a shard is marked down
    probe_fail_threshold: int = 3
    #: router-side stale-response cache (the failover rung) capacity
    stale_cache_entries: int = 2048
    #: stale-cache TTL in seconds (entries older than this still serve
    #: as *stale* failover answers until evicted by capacity)
    stale_cache_ttl: float | None = 30.0


@dataclass
class _ShardState:
    shard_id: int
    host: str
    port: int
    forwarder: ShardForwarder
    healthy: bool = True
    consecutive_failures: int = 0
    objects: int = 0
    probe_task: asyncio.Task | None = None
    probe_client: HttpClient | None = None


class RouterService:
    """Forwarding core behind a :class:`RouterServer` front-end."""

    def __init__(
        self,
        router_config: RouterConfig,
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.router_config = router_config
        self.config = config or ServeConfig()
        self.metrics = metrics or MetricsRegistry()
        self.chaos = None  # the router never injects faults itself
        self.ring = HashRing(
            router_config.num_shards,
            replicas=router_config.replicas,
            salt=router_config.salt,
        )
        self.admission = AdmissionController(
            {
                "predict": self.config.max_inflight_predict,
                "ingest": self.config.max_inflight_ingest,
                "background": self.config.refit_concurrency,
            },
            high_watermark=self.config.high_watermark,
            low_watermark=self.config.low_watermark,
            client_rate=self.config.client_rate,
            client_burst=self.config.client_burst,
            retry_after=self.config.retry_after,
            metrics=self.metrics,
        )
        self._shards: dict[int, _ShardState] = {}
        self._stale = PredictionCache(
            max_entries=router_config.stale_cache_entries,
            ttl=router_config.stale_cache_ttl,
            metrics=None,  # its hit rate is not the predict cache's
        )
        self.metrics.gauge(
            "router_shards_total", help="shards the ring routes onto"
        ).set(router_config.num_shards)
        self._gauge_healthy()

    # ------------------------------------------------------------------
    # shard lifecycle (driven by ShardCluster callbacks)
    # ------------------------------------------------------------------
    def attach_shard(self, shard_id: int, host: str, port: int) -> None:
        """Register a (re)started worker and begin forwarding to it."""
        if not 0 <= shard_id < self.ring.num_shards:
            raise ValueError(
                f"shard id {shard_id} outside ring of {self.ring.num_shards}"
            )
        old = self._shards.pop(shard_id, None)
        if old is not None:
            asyncio.ensure_future(self._teardown(old))
        forwarder = ShardForwarder(
            shard_id,
            host,
            port,
            queue=ForwardQueue(
                max_depth=self.router_config.queue_depth,
                high_watermark=self.router_config.queue_high_watermark,
                low_watermark=self.router_config.queue_low_watermark,
            ),
            concurrency=self.router_config.pump_concurrency,
            metrics=self.metrics,
        )
        forwarder.start()
        state = _ShardState(shard_id, host, port, forwarder)
        state.probe_client = HttpClient(host, port)
        state.probe_task = asyncio.ensure_future(self._probe_loop(state))
        self._shards[shard_id] = state
        self.metrics.counter("router_shard_attach_total").inc()
        self._gauge_healthy()

    def detach_shard(self, shard_id: int) -> None:
        """Stop forwarding to a dead worker; queued jobs fail fast."""
        state = self._shards.pop(shard_id, None)
        if state is None:
            return
        asyncio.ensure_future(self._teardown(state))
        self.metrics.counter("router_shard_detach_total").inc()
        self._gauge_healthy()

    async def _teardown(self, state: _ShardState) -> None:
        if state.probe_task is not None:
            state.probe_task.cancel()
            with suppress(asyncio.CancelledError):
                await state.probe_task
        if state.probe_client is not None:
            await state.probe_client.close()
        await state.forwarder.stop()

    def shard_states(self) -> dict[int, dict]:
        """Operator view of every attached shard (for tests/healthz)."""
        return {
            shard_id: {
                "host": state.host,
                "port": state.port,
                "healthy": state.healthy,
                "objects": state.objects,
                "queue_depth": state.forwarder.queue.depth(),
            }
            for shard_id, state in sorted(self._shards.items())
        }

    # ------------------------------------------------------------------
    # health probing
    # ------------------------------------------------------------------
    async def _probe_loop(self, state: _ShardState) -> None:
        config = self.router_config
        while True:
            try:
                status, _, body = await asyncio.wait_for(
                    state.probe_client.request("GET", "/healthz"),
                    config.probe_timeout,
                )
                if status != 200:
                    raise ConnectionError(f"healthz returned {status}")
                state.consecutive_failures = 0
                if not state.healthy:
                    state.healthy = True
                    self.metrics.counter("router_shard_recovered_total").inc()
                    self._gauge_healthy()
                with suppress(Exception):
                    state.objects = int(json.loads(body)["objects"])
            except asyncio.CancelledError:
                raise
            except Exception:
                await state.probe_client.close()
                state.consecutive_failures += 1
                if (
                    state.healthy
                    and state.consecutive_failures
                    >= config.probe_fail_threshold
                ):
                    state.healthy = False
                    self.metrics.counter("router_shard_down_total").inc()
                    self._gauge_healthy()
            await asyncio.sleep(config.probe_interval)

    def _gauge_healthy(self) -> None:
        self.metrics.gauge(
            "router_shards_healthy", help="attached shards passing probes"
        ).set(sum(1 for s in self._shards.values() if s.healthy))

    # ------------------------------------------------------------------
    # request handling (RouterServer._dispatch lands here)
    # ------------------------------------------------------------------
    async def handle(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, str, bytes, dict[str, str]]:
        path = path.split("?", 1)[0]
        try:
            if (method, path) == ("POST", "/predict"):
                return await self._forward_single(path, body, "predict")
            if (method, path) == ("POST", "/ingest"):
                return await self._forward_single(path, body, "ingest")
            if (method, path) == ("POST", "/predict_all"):
                return await self._predict_all(body)
            if (method, path) == ("GET", "/objects"):
                return await self._objects()
            if (method, path) == ("GET", "/healthz"):
                return self._healthz()
            if (method, path) == ("GET", "/metrics"):
                return await self._metrics_text()
            if (method, path) == ("GET", "/metrics.json"):
                return await self._metrics_json()
        except ApiError as exc:
            extra = {}
            if exc.retry_after is not None:
                extra["Retry-After"] = _fmt_seconds(exc.retry_after)
            return exc.status, _JSON, encode_json({"error": exc.message}), extra
        known = {
            "/predict",
            "/ingest",
            "/predict_all",
            "/objects",
            "/healthz",
            "/metrics",
            "/metrics.json",
        }
        if path in known:
            return 405, _JSON, encode_json({"error": "method not allowed"}), {}
        return 404, _JSON, encode_json({"error": f"no route {path}"}), {}

    async def _forward_single(
        self, path: str, body: bytes, request_class: str
    ) -> tuple[int, str, bytes, dict[str, str]]:
        payload = _parse_body(body)
        object_id = _object_id(payload)
        shard_id = self.ring.shard_for(object_id)
        stale_key = (object_id, hashlib.sha1(body).digest())
        state = self._shards.get(shard_id)

        if state is not None and state.healthy:
            try:
                status, headers, response = await state.forwarder.submit(
                    "POST",
                    path,
                    body,
                    priority=request_class,
                    timeout=self.router_config.forward_timeout,
                )
            except QueueFullError as exc:
                self.metrics.counter("router_shed_total").inc()
                raise ApiError(
                    503,
                    f"shard {shard_id} overloaded ({exc.reason})",
                    retry_after=self.config.retry_after,
                ) from None
            except (
                ShardTransportError,
                asyncio.TimeoutError,
                TimeoutError,
            ):
                self.metrics.counter("router_failover_total").inc()
            else:
                extra = {"X-Shard": str(shard_id)}
                for name in _PASSTHROUGH_HEADERS:
                    if name in headers:
                        extra[_canonical_header(name)] = headers[name]
                if status == 200 and request_class == "predict":
                    if headers.get("x-degraded") != "true":
                        self._stale.put(stale_key, response)
                elif status == 200 and request_class == "ingest":
                    # The object's window moved; stale answers for the
                    # old window would outlive their usefulness.
                    self._stale.invalidate(object_id)
                return status, _JSON, response, extra

        # Shard down or unreachable: the router-tier degradation ladder.
        if request_class == "predict":
            stale, _ = self._stale.lookup(stale_key)
            if stale is not None:
                self.metrics.counter("router_degraded_total").inc()
                degraded = json.loads(stale)
                degraded["degraded"] = True
                return (
                    200,
                    _JSON,
                    encode_json(degraded),
                    {
                        "X-Shard": str(shard_id),
                        "X-Cache": "stale",
                        "X-Degraded": "true",
                    },
                )
        self.metrics.counter("router_unavailable_total").inc()
        raise ApiError(
            503,
            f"shard {shard_id} unavailable for object {object_id!r}",
            retry_after=self.config.retry_after,
        )

    # ------------------------------------------------------------------
    # scatter-gather
    # ------------------------------------------------------------------
    async def _scatter(
        self,
        method: str,
        path: str,
        bodies: dict[int, bytes],
        priority: str = "background",
    ) -> tuple[dict[int, bytes], list[int]]:
        """Fan a request out to shards; returns (200 bodies, failed ids)."""

        async def one(shard_id: int, body: bytes):
            state = self._shards.get(shard_id)
            if state is None or not state.healthy:
                return shard_id, None
            try:
                status, _, response = await state.forwarder.submit(
                    method,
                    path,
                    body,
                    priority=priority,
                    timeout=self.router_config.forward_timeout,
                )
            except (
                QueueFullError,
                ShardTransportError,
                asyncio.TimeoutError,
                TimeoutError,
            ):
                return shard_id, None
            return shard_id, response if status == 200 else None

        results = await asyncio.gather(
            *(one(shard_id, body) for shard_id, body in bodies.items())
        )
        ok = {shard_id: resp for shard_id, resp in results if resp is not None}
        failed = sorted(shard_id for shard_id, resp in results if resp is None)
        if failed:
            self.metrics.counter("router_partial_total").inc()
        return ok, failed

    async def _objects(self) -> tuple[int, str, bytes, dict[str, str]]:
        bodies = {shard_id: b"" for shard_id in self._shards}
        ok, failed = await self._scatter("GET", "/objects", bodies)
        rows = []
        for response in ok.values():
            rows.extend(json.loads(response)["objects"])
        rows.sort(key=lambda row: row["object_id"])
        payload: dict = {"objects": rows}
        if failed or len(ok) < self.ring.num_shards:
            payload["partial"] = True
        return 200, _JSON, encode_json(payload), {}

    async def _predict_all(
        self, body: bytes
    ) -> tuple[int, str, bytes, dict[str, str]]:
        payload = _parse_body(body)
        query_time = payload.get("query_time")
        if not isinstance(query_time, int):
            raise ApiError(400, "query_time must be an integer")
        recents = payload.get("recents")
        if recents is None:
            # Tracker-backed sweep: every shard scores its own windows.
            bodies = {shard_id: body for shard_id in self._shards}
        else:
            if not isinstance(recents, dict):
                raise ApiError(
                    400, "recents must map object ids to [[t, x, y], ...]"
                )
            groups: dict[int, dict] = {}
            for object_id, fixes in recents.items():
                if not isinstance(object_id, str) or not object_id:
                    raise ApiError(400, "recents keys must be non-empty strings")
                groups.setdefault(self.ring.shard_for(object_id), {})[
                    object_id
                ] = fixes
            bodies = {
                shard_id: encode_json(
                    {"query_time": query_time, "recents": group}
                )
                for shard_id, group in groups.items()
            }
        ok, failed = await self._scatter(
            "POST", "/predict_all", bodies, priority="predict"
        )
        results: list[dict] = []
        unknown: list[str] = []
        for response in ok.values():
            parsed = json.loads(response)
            results.extend(parsed["results"])
            unknown.extend(parsed.get("unknown", ()))
        results.sort(key=lambda row: row["object_id"])
        merged: dict = {"query_time": query_time, "results": results}
        if unknown:
            merged["unknown"] = sorted(unknown)
        if failed or (bodies and not ok and recents):
            merged["partial"] = True
        return 200, _JSON, encode_json(merged), {}

    # ------------------------------------------------------------------
    # metrics + health
    # ------------------------------------------------------------------
    async def _shard_dumps(self) -> tuple[list[dict], int]:
        bodies = {shard_id: b"" for shard_id in self._shards}
        ok, _ = await self._scatter("GET", "/metrics.json", bodies)
        return [json.loads(response) for response in ok.values()], len(ok)

    async def _metrics_text(self) -> tuple[int, str, bytes, dict[str, str]]:
        dumps, reached = await self._shard_dumps()
        merged = merge_dumps([self.metrics.dump(), *dumps])
        text = (
            f"# router: aggregated {reached}/{self.ring.num_shards} "
            "shard registries plus the router's own\n"
            + merged.render_text()
        )
        return 200, "text/plain; version=0.0.4", text.encode("utf-8"), {}

    async def _metrics_json(self) -> tuple[int, str, bytes, dict[str, str]]:
        dumps, _ = await self._shard_dumps()
        merged = merge_dumps([self.metrics.dump(), *dumps])
        return 200, _JSON, encode_json(merged.dump()), {}

    def _healthz(self) -> tuple[int, str, bytes, dict[str, str]]:
        healthy = sum(1 for s in self._shards.values() if s.healthy)
        total = self.ring.num_shards
        payload = {
            "status": "ok" if healthy == total else "degraded",
            "objects": sum(s.objects for s in self._shards.values()),
            "shards": {"healthy": healthy, "total": total},
        }
        return 200, _JSON, encode_json(payload), {}

    # ------------------------------------------------------------------
    # lifecycle glue for PredictionServer
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Nothing queues beyond in-flight forwards, which handlers await."""

    async def stop(self) -> None:
        """Tear down probes and forwarders for every shard."""
        for shard_id in list(self._shards):
            state = self._shards.pop(shard_id)
            await self._teardown(state)
        self._gauge_healthy()


class RouterServer(PredictionServer):
    """The router's HTTP front-end: PredictionServer's hardened socket
    machinery and admission gate, dispatching into a
    :class:`RouterService` instead of local handlers."""

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, str, bytes, dict[str, str]]:
        return await self.service.handle(method, path, body)

    async def close(self) -> None:
        await super().close()
        await self.service.stop()


def _canonical_header(lower_name: str) -> str:
    """``x-cache`` → ``X-Cache`` (the wire casing the server emits)."""
    return "-".join(part.capitalize() for part in lower_name.split("-"))


def _fmt_seconds(seconds: float) -> str:
    return (
        str(int(seconds))
        if float(seconds).is_integer()
        else f"{seconds:.3f}"
    )
