"""Shard worker: one process serving one consistent-hash slice.

A worker is the existing single-process stack —
:class:`~repro.serve.server.PredictionService` behind a
:class:`~repro.serve.server.PredictionServer` — pointed at a *slice* of
the fleet instead of all of it.  Nothing in the serve path knows it is
sharded; the router owns placement, so a worker answers exactly the
bytes a whole-fleet server would answer for the objects it holds.

Slice selection (:func:`load_shard_fleet`) supports both snapshot
layouts:

* a **sharded snapshot** (``repro shard-snapshot split``): the worker
  loads its ``shard_NNNN/`` directory, after checking the on-disk ring
  parameters match its own — placement baked at split time and
  placement at serve time must be the same ring;
* a **plain fleet snapshot**: the worker builds the ring itself and
  loads only the manifest objects hashing to its shard id (PR 3's
  parallel warm-up, restricted via ``load_fleet(object_ids=...)``), so
  warm-up cost scales with the slice.

Readiness is a file, not a log line: the worker binds an ephemeral port
(``--port 0``), then atomically writes the bound port into
``--ready-file``.  The supervisor polls for that file, so "ready" means
"accepting connections", never "probably started by now".  SIGTERM
drains in-flight work through :meth:`PredictionServer.run_forever`'s
graceful path and exits 0.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ...core.fleet import FleetPredictionModel
from ...core.persistence import load_fleet
from ..server import PredictionServer, PredictionService, ServeConfig
from .ring import DEFAULT_REPLICAS, HashRing
from .snapshot import (
    SHARD_MANIFEST,
    read_shard_manifest,
    shard_dir_name,
)

__all__ = ["load_shard_fleet", "run_worker"]


def load_shard_fleet(
    snapshot: str | Path,
    shard_id: int,
    num_shards: int,
    *,
    replicas: int = DEFAULT_REPLICAS,
    salt: str = "hpm-ring",
    max_workers: int | None = None,
    mmap: bool = True,
) -> FleetPredictionModel:
    """Load the slice of ``snapshot`` that shard ``shard_id`` owns.

    With a v2 (packed columnar) snapshot the ring slice is restricted
    via the per-object offset index before any block is touched, so a
    worker only faults in the pages its own objects occupy; ``mmap``
    forwards to :func:`repro.core.persistence.load_fleet`.
    """
    if not 0 <= shard_id < num_shards:
        raise ValueError(
            f"shard id {shard_id} outside 0..{num_shards - 1}"
        )
    snapshot = Path(snapshot)
    if (snapshot / SHARD_MANIFEST).is_file():
        manifest = read_shard_manifest(snapshot)
        baked = (manifest["num_shards"], manifest["replicas"], manifest["salt"])
        if baked != (num_shards, replicas, salt):
            raise ValueError(
                f"{snapshot} was split for ring {baked}, not "
                f"({num_shards}, {replicas}, {salt!r}); resplit or fix flags"
            )
        return load_fleet(
            snapshot / shard_dir_name(shard_id),
            max_workers=max_workers,
            mmap=mmap,
        )
    ring = HashRing(num_shards, replicas=replicas, salt=salt)
    manifest_path = snapshot / "manifest.json"
    if not manifest_path.is_file():
        raise ValueError(f"{snapshot} is not a fleet snapshot")
    object_ids = json.loads(manifest_path.read_text())["objects"].keys()
    mine = [oid for oid in object_ids if ring.shard_for(oid) == shard_id]
    return load_fleet(
        snapshot, max_workers=max_workers, object_ids=mine, mmap=mmap
    )


async def run_worker(
    snapshot: str | Path,
    shard_id: int,
    num_shards: int,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_file: str | Path | None = None,
    replicas: int = DEFAULT_REPLICAS,
    salt: str = "hpm-ring",
    config: ServeConfig | None = None,
    grace: float = 5.0,
    max_workers: int | None = None,
    mmap: bool = True,
) -> int:
    """Serve one shard until SIGTERM/SIGINT; returns the exit code.

    Binds, *then* publishes the bound port through ``ready_file`` (an
    atomic rename, so the supervisor never reads a half-written file).
    """
    fleet = load_shard_fleet(
        snapshot,
        shard_id,
        num_shards,
        replicas=replicas,
        salt=salt,
        max_workers=max_workers,
        mmap=mmap,
    )
    service = PredictionService(fleet, config or ServeConfig())
    service.metrics.gauge(
        "serve_shard_id", help="which shard this worker serves"
    ).set(shard_id)
    server = PredictionServer(service, host=host, port=port)
    await server.start()
    if ready_file is not None:
        ready_file = Path(ready_file)
        tmp = ready_file.with_suffix(ready_file.suffix + ".tmp")
        tmp.write_text(f"{server.port}\n")
        os.replace(tmp, ready_file)
    print(
        f"shard {shard_id}/{num_shards}: {len(fleet)} object(s) on "
        f"http://{host}:{server.port}",
        flush=True,
    )
    await server.run_forever(handle_signals=True, grace=grace)
    return 0
