"""Request batching: coalesce concurrent predict calls into one pass.

Under load, many clients query the same object inside one event-loop
tick.  Executing each query as its own executor job pays the
lock-acquire / thread-handoff cost per request and re-walks shared
per-object state.  The batcher instead holds the first request for a key
back for a short window (``max_delay``), collects everything else that
arrives for that key, and runs the whole batch as **one** executor pass
— one lock acquisition, one model context.  Identical requests inside a
window are deduplicated: they share a single computation and its result.

A batch flushes early the moment it reaches ``max_batch`` distinct
requests, so the delay window bounds tail latency while the size bound
caps memory.  The executed callable is synchronous (model passes are
CPU work); it runs on the event loop's default executor so the loop
stays responsive.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Hashable, Sequence

__all__ = ["RequestBatcher"]


class _Batch:
    __slots__ = ("futures", "closed", "timer")

    def __init__(self) -> None:
        # request -> future; dict preserves arrival order and dedupes.
        self.futures: dict[Hashable, asyncio.Future] = {}
        self.closed = False
        self.timer: asyncio.Task | None = None


class RequestBatcher:
    """Coalesce concurrent ``submit`` calls per key into batched passes.

    Parameters
    ----------
    execute:
        ``execute(key, requests) -> list[result]`` — synchronous, called
        with the batch's distinct requests in arrival order; must return
        one result per request.  Runs in the default executor.
    max_batch:
        Flush as soon as a batch holds this many distinct requests.
    max_delay:
        Seconds the first request in a batch waits for company.
    metrics:
        Optional :class:`~repro.serve.metrics.MetricsRegistry` for batch
        size / coalescing telemetry.
    """

    def __init__(
        self,
        execute: Callable[[Hashable, Sequence[Hashable]], Sequence[Any]],
        max_batch: int = 32,
        max_delay: float = 0.002,
        metrics=None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.execute = execute
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.metrics = metrics
        self._pending: dict[Hashable, _Batch] = {}
        self.submitted = 0
        self.coalesced = 0
        self.batches = 0
        self.largest_batch = 0

    async def submit(self, key: Hashable, request: Hashable) -> Any:
        """Enqueue ``request`` under ``key``; resolves with its result."""
        self.submitted += 1
        if self.metrics is not None:
            self.metrics.counter("serve_batch_submitted_total").inc()
        batch = self._pending.get(key)
        if batch is None or batch.closed:
            batch = _Batch()
            self._pending[key] = batch
            batch.timer = asyncio.get_running_loop().create_task(
                self._flush_after_delay(key, batch)
            )
        future = batch.futures.get(request)
        if future is None:
            future = asyncio.get_running_loop().create_future()
            batch.futures[request] = future
            if len(batch.futures) >= self.max_batch:
                self._close(key, batch)
                if batch.timer is not None:
                    batch.timer.cancel()
                asyncio.get_running_loop().create_task(self._run(key, batch))
        else:
            # A twin request is already in flight: share its result.
            self.coalesced += 1
            if self.metrics is not None:
                self.metrics.counter("serve_batch_coalesced_total").inc()
        return await future

    async def drain(self) -> None:
        """Flush every pending batch immediately (shutdown/tests)."""
        batches = [
            (key, batch)
            for key, batch in list(self._pending.items())
            if not batch.closed
        ]
        for key, batch in batches:
            self._close(key, batch)
            if batch.timer is not None:
                batch.timer.cancel()
        await asyncio.gather(
            *(self._run(key, batch) for key, batch in batches)
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _close(self, key: Hashable, batch: _Batch) -> None:
        batch.closed = True
        if self._pending.get(key) is batch:
            del self._pending[key]

    async def _flush_after_delay(self, key: Hashable, batch: _Batch) -> None:
        try:
            await asyncio.sleep(self.max_delay)
        except asyncio.CancelledError:
            return
        if batch.closed:
            return
        self._close(key, batch)
        await self._run(key, batch)

    async def _run(self, key: Hashable, batch: _Batch) -> None:
        requests = list(batch.futures)
        self.batches += 1
        self.largest_batch = max(self.largest_batch, len(requests))
        if self.metrics is not None:
            self.metrics.counter("serve_batches_total").inc()
            self.metrics.histogram(
                "serve_batch_size",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128),
            ).observe(len(requests))
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                None, self.execute, key, requests
            )
            if len(results) != len(requests):
                raise RuntimeError(
                    f"batch execute returned {len(results)} results "
                    f"for {len(requests)} requests"
                )
        except Exception as exc:  # propagate to every waiter
            for future in batch.futures.values():
                if not future.done():
                    future.set_exception(exc)
            return
        for future, result in zip(batch.futures.values(), results):
            if not future.done():
                future.set_result(result)

    def stats(self) -> dict[str, float]:
        return {
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
        }

    def __repr__(self) -> str:
        return (
            f"RequestBatcher(max_batch={self.max_batch}, "
            f"max_delay={self.max_delay}, batches={self.batches})"
        )
