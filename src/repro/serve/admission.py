"""Admission control: bounded per-class slots, watermarks, rate limits.

The serve process has one event loop and one executor; without admission
control an ingest storm or a misbehaving client consumes both and every
request — including the cheap cached predicts the fleet dashboard needs
— times out together.  This module decides, *before* any model work is
scheduled, whether a request may enter the system:

* **Per-class bounded slots.**  Every in-flight request holds a slot in
  its class (``predict``, ``ingest``, ``background``).  A class at
  capacity sheds new arrivals immediately with ``503 + Retry-After``
  instead of queueing them into oblivion.
* **Watermark backpressure with hysteresis.**  When the *total* depth
  crosses ``high_watermark`` the controller enters shedding mode and
  only the highest-priority class (predict) is admitted; it leaves
  shedding mode once depth falls to ``low_watermark``.  The gap between
  the watermarks prevents flapping at the boundary.
* **Per-client token buckets.**  Requests are attributed to a client
  (``X-Client-Id`` header, falling back to the peer address) and each
  client refills at ``rate`` tokens/sec up to ``burst``.  An empty
  bucket answers ``429 + Retry-After`` with the exact time until the
  next token.  The client table is LRU-bounded so an address scan
  cannot grow it without bound.

Everything is synchronous and O(1) per decision — admission runs on the
event loop for every request, so it must never block or allocate
per-request state beyond the slot count.  The clock is injectable for
deterministic tests.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

__all__ = [
    "AdmissionDecision",
    "AdmissionController",
    "TokenBucket",
    "REQUEST_CLASSES",
]

#: Request classes in priority order: under watermark shedding only the
#: first class is still admitted.  ``background`` is the refit scheduler's
#: class — model refreshes yield to foreground traffic.
REQUEST_CLASSES: tuple[str, ...] = ("predict", "ingest", "background")


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/sec, capacity ``burst``.

    ``try_acquire`` either takes a token (returns 0.0) or returns the
    seconds until one will be available, which maps directly onto a
    ``Retry-After`` header.
    """

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = now

    def try_acquire(self, now: float, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available; returns 0.0 on success, else the
        seconds to wait before this acquire would succeed."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= tokens:
            self.tokens -= tokens
            return 0.0
        return (tokens - self.tokens) / self.rate


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission check.

    ``admitted`` requests hold a slot that the caller must return via
    :meth:`AdmissionController.release`; rejected requests carry the
    HTTP status to answer with and a ``Retry-After`` hint in seconds.
    """

    admitted: bool
    status: int = 200
    retry_after: float = 0.0
    reason: str = ""


_ADMIT = AdmissionDecision(True)


class AdmissionController:
    """Slot accounting + watermark shedding + per-client rate limits.

    Parameters
    ----------
    capacities:
        Max in-flight requests per class, e.g. ``{"predict": 64,
        "ingest": 32, "background": 2}``.  Classes not listed are
        unlimited.
    high_watermark / low_watermark:
        Total-depth hysteresis band for shedding mode (see module
        docstring).  ``high_watermark=0`` disables watermark shedding.
    client_rate / client_burst:
        Token-bucket refill rate and capacity per client id;
        ``client_rate=0`` disables rate limiting.
    retry_after:
        Baseline ``Retry-After`` seconds for shed responses (rate-limit
        responses report the exact bucket wait instead).
    max_clients:
        LRU bound on the per-client bucket table.
    clock:
        Monotonic time source (injectable for tests).
    metrics:
        Optional :class:`~repro.serve.metrics.MetricsRegistry`; shed /
        rate-limit counters and depth gauges are maintained when given.
    """

    def __init__(
        self,
        capacities: dict[str, int] | None = None,
        *,
        high_watermark: int = 0,
        low_watermark: int = 0,
        client_rate: float = 0.0,
        client_burst: float = 10.0,
        retry_after: float = 1.0,
        max_clients: int = 4096,
        clock: Callable[[], float] = time.monotonic,
        metrics=None,
    ):
        if high_watermark and low_watermark >= high_watermark:
            raise ValueError(
                f"low_watermark ({low_watermark}) must be below "
                f"high_watermark ({high_watermark})"
            )
        if client_rate < 0:
            raise ValueError(f"client_rate must be >= 0, got {client_rate}")
        self.capacities = dict(capacities or {})
        for name, cap in self.capacities.items():
            if cap < 1:
                raise ValueError(f"capacity for {name!r} must be >= 1, got {cap}")
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.client_rate = client_rate
        self.client_burst = client_burst
        self.retry_after = retry_after
        self.max_clients = max_clients
        self.clock = clock
        self.metrics = metrics
        self.inflight: dict[str, int] = {name: 0 for name in REQUEST_CLASSES}
        self.shedding = False
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self.shed = 0
        self.rate_limited = 0
        self.admitted = 0

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def try_acquire(
        self, request_class: str, client_id: str | None = None
    ) -> AdmissionDecision:
        """Admit or reject one request of ``request_class``.

        Checks run cheapest-first: rate limit, own-class capacity, then
        the watermark.  On admission the class's in-flight count is
        incremented; the caller owns a :meth:`release`.
        """
        if request_class not in self.inflight:
            self.inflight[request_class] = 0

        if client_id is not None and self.client_rate > 0:
            wait = self._bucket(client_id).try_acquire(self.clock())
            if wait > 0.0:
                self.rate_limited += 1
                self._count("serve_rate_limited_total")
                return AdmissionDecision(
                    False,
                    status=429,
                    retry_after=math.ceil(wait * 1000.0) / 1000.0,
                    reason=f"client {client_id!r} over rate limit",
                )

        capacity = self.capacities.get(request_class)
        if capacity is not None and self.inflight[request_class] >= capacity:
            return self._shed(
                request_class,
                f"{request_class} queue full ({capacity} in flight)",
            )

        if self.high_watermark:
            depth = self.depth()
            if self.shedding and depth <= self.low_watermark:
                self.shedding = False
            if not self.shedding and depth >= self.high_watermark:
                self.shedding = True
            if self.shedding and request_class != REQUEST_CLASSES[0]:
                return self._shed(
                    request_class,
                    f"shedding above high watermark "
                    f"({depth}/{self.high_watermark} in flight)",
                )

        self.inflight[request_class] += 1
        self.admitted += 1
        self._gauge_depth()
        return _ADMIT

    def release(self, request_class: str) -> None:
        """Return the slot held by an admitted request."""
        count = self.inflight.get(request_class, 0)
        if count <= 0:
            raise RuntimeError(f"release without acquire for {request_class!r}")
        self.inflight[request_class] = count - 1
        if (
            self.shedding
            and self.high_watermark
            and self.depth() <= self.low_watermark
        ):
            self.shedding = False
        self._gauge_depth()

    def depth(self) -> int:
        """Total in-flight requests across every class."""
        return sum(self.inflight.values())

    def stats(self) -> dict[str, float]:
        return {
            "depth": self.depth(),
            "shedding": self.shedding,
            "admitted": self.admitted,
            "shed": self.shed,
            "rate_limited": self.rate_limited,
            "clients": len(self._buckets),
            **{f"inflight_{k}": v for k, v in self.inflight.items()},
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _bucket(self, client_id: str) -> TokenBucket:
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(self.client_rate, self.client_burst, self.clock())
            self._buckets[client_id] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client_id)
        return bucket

    def _shed(self, request_class: str, reason: str) -> AdmissionDecision:
        self.shed += 1
        self._count("serve_shed_total")
        self._count(f"serve_shed_total_{request_class}")
        return AdmissionDecision(
            False, status=503, retry_after=self.retry_after, reason=reason
        )

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _gauge_depth(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "serve_queue_depth", help="in-flight requests, all classes"
            ).set(self.depth())
            for name, count in self.inflight.items():
                self.metrics.gauge(f"serve_queue_depth_{name}").set(count)

    def __repr__(self) -> str:
        return (
            f"AdmissionController(depth={self.depth()}, "
            f"shedding={self.shedding}, shed={self.shed})"
        )
