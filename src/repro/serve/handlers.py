"""The JSON-over-HTTP API surface: routing, parsing, wire format.

Kept separate from the socket machinery in :mod:`repro.serve.server` so
the API can be unit-tested without a network and so the serialization is
canonical in one place: :func:`render_predict_body` is the *single*
producer of prediction payloads, which makes "served bytes == direct
in-process predict bytes" a testable invariant (the end-to-end test
compares the HTTP body against this function applied to a direct
``model.predict`` call).

Endpoints
----------
* ``POST /predict``  — ``{"object_id", "query_time", "k"?, "recent"?,
  "deadline_ms"?}``; ``recent`` is ``[[t, x, y], ...]`` (chronological)
  and may be omitted when the object has an ingest-fed tracker window.
  Responds with the top-k predictions; the ``X-Cache`` header says
  ``hit`` or ``miss``.  ``deadline_ms`` bounds the model pass — on
  expiry the answer degrades (stale cache or motion-only, marked
  ``"degraded": true`` and ``X-Degraded: true``; ``X-Cache: stale``
  for the stale rung) rather than blocking past the deadline.
* ``POST /ingest``   — ``{"object_id", "fixes": [[t, x, y], ...]}``;
  streams fixes into the object's tracker, invalidates its cache
  entries, and schedules a background refit when enough data accrued.
* ``POST /predict_all`` — ``{"query_time", "recents"?}``; top-1
  predictions for many objects in one call.  ``recents`` maps object id
  to ``[[t, x, y], ...]``; when omitted, every object with an
  ingest-fed tracker window is scored.  The endpoint is lenient: ids
  the fleet doesn't know land in a sorted ``"unknown"`` list (present
  only when non-empty) instead of failing the batch, which lets the
  shard router scatter a request across workers and merge the pieces
  byte-identically.
* ``GET /objects``   — per-object model/tracker summary.
* ``GET /healthz``   — liveness.
* ``GET /metrics``   — Prometheus-style text exposition.
* ``GET /metrics.json`` — the registry's full mergeable state
  (:meth:`~repro.serve.metrics.MetricsRegistry.dump`), which the shard
  router aggregates into its fleet-wide ``/metrics`` view.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from ..core.prediction import Prediction

__all__ = [
    "ApiError",
    "encode_json",
    "prediction_to_dict",
    "render_predict_body",
    "render_predict_all_body",
    "route",
]

_JSON = "application/json"


class ApiError(Exception):
    """An error with an HTTP status, rendered as ``{"error": ...}``.

    ``retry_after`` (seconds) adds a ``Retry-After`` response header —
    used by the overload paths (503) so well-behaved clients back off.
    """

    def __init__(
        self, status: int, message: str, retry_after: float | None = None
    ):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


def encode_json(payload: Any) -> bytes:
    """Canonical JSON bytes: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def prediction_to_dict(prediction: Prediction) -> dict:
    """One prediction on the wire: location, method, ranking score."""
    return {
        "x": prediction.location.x,
        "y": prediction.location.y,
        "method": prediction.method,
        "score": prediction.score,
    }


def render_predict_body(
    object_id: str,
    query_time: int,
    predictions: Sequence[Prediction],
    degraded: bool = False,
) -> bytes:
    """The canonical ``POST /predict`` response body.

    ``degraded`` marks answers produced by the overload fallback ladder
    (stale cache / motion-only); the key is absent from full-quality
    responses, keeping them byte-identical to direct predict calls.
    """
    payload: dict = {
        "object_id": object_id,
        "query_time": query_time,
        "predictions": [prediction_to_dict(p) for p in predictions],
    }
    if degraded:
        payload["degraded"] = True
    return encode_json(payload)


# ----------------------------------------------------------------------
# request parsing
# ----------------------------------------------------------------------
def _parse_body(body: bytes) -> dict:
    if not body:
        raise ApiError(400, "empty request body; expected JSON")
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as exc:
        raise ApiError(400, f"invalid JSON body: {exc}") from None
    if not isinstance(payload, dict):
        raise ApiError(400, "JSON body must be an object")
    return payload


def _object_id(payload: dict) -> str:
    object_id = payload.get("object_id", "default")
    if not isinstance(object_id, str) or not object_id:
        raise ApiError(400, "object_id must be a non-empty string")
    return object_id


def _parse_fixes(payload: dict, field: str) -> list[tuple[int, float, float]]:
    raw = payload.get(field)
    if not isinstance(raw, list) or not raw:
        raise ApiError(400, f"{field} must be a non-empty list of [t, x, y]")
    fixes = []
    for entry in raw:
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            raise ApiError(400, f"bad {field} entry {entry!r}; expected [t, x, y]")
        t, x, y = entry
        try:
            fixes.append((int(t), float(x), float(y)))
        except (TypeError, ValueError):
            raise ApiError(
                400, f"bad {field} entry {entry!r}; expected numbers"
            ) from None
    return fixes


# ----------------------------------------------------------------------
# handlers
# ----------------------------------------------------------------------
async def _handle_predict(service, body: bytes):
    payload = _parse_body(body)
    object_id = _object_id(payload)
    query_time = payload.get("query_time")
    if not isinstance(query_time, int):
        raise ApiError(400, "query_time must be an integer")
    k = payload.get("k")
    if k is not None and (not isinstance(k, int) or k < 1):
        raise ApiError(400, "k must be a positive integer")
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None and (
        isinstance(deadline_ms, bool)
        or not isinstance(deadline_ms, (int, float))
        or deadline_ms <= 0
    ):
        raise ApiError(400, "deadline_ms must be a positive number")
    recent = (
        _parse_fixes(payload, "recent") if payload.get("recent") is not None else None
    )
    predictions, cached, degraded = await service.predict(
        object_id, recent, query_time, k, deadline_ms=deadline_ms
    )
    headers = {"X-Cache": "hit" if cached else "miss"}
    if degraded:
        headers["X-Cache"] = "stale" if cached else "miss"
        headers["X-Degraded"] = "true"
    return (
        200,
        _JSON,
        render_predict_body(object_id, query_time, predictions, degraded),
        headers,
    )


async def _handle_ingest(service, body: bytes):
    payload = _parse_body(body)
    object_id = _object_id(payload)
    fixes = _parse_fixes(payload, "fixes")
    result = await service.ingest(object_id, fixes)
    return 200, _JSON, encode_json(result), {}


def render_predict_all_body(
    query_time: int,
    results: "dict[str, Prediction]",
    unknown: Sequence[str] = (),
) -> bytes:
    """The canonical ``POST /predict_all`` response body.

    Results are sorted by object id, so a scatter-gathered response
    (each shard rendering its slice through this same function, the
    router merging and re-rendering) is byte-identical to a
    single-process answer.
    """
    payload: dict = {
        "query_time": query_time,
        "results": [
            {
                "object_id": object_id,
                "prediction": prediction_to_dict(results[object_id]),
            }
            for object_id in sorted(results)
        ],
    }
    if unknown:
        payload["unknown"] = sorted(unknown)
    return encode_json(payload)


async def _handle_predict_all(service, body: bytes):
    payload = _parse_body(body)
    query_time = payload.get("query_time")
    if not isinstance(query_time, int):
        raise ApiError(400, "query_time must be an integer")
    raw_recents = payload.get("recents")
    recents = None
    if raw_recents is not None:
        if not isinstance(raw_recents, dict):
            raise ApiError(400, "recents must map object ids to [[t, x, y], ...]")
        recents = {}
        for object_id, fixes in raw_recents.items():
            if not isinstance(object_id, str) or not object_id:
                raise ApiError(400, "recents keys must be non-empty strings")
            recents[object_id] = _parse_fixes({"recent": fixes}, "recent")
    results, unknown = await service.predict_all(recents, query_time)
    return (
        200,
        _JSON,
        render_predict_all_body(query_time, results, unknown),
        {},
    )


async def _handle_objects(service, body: bytes):
    return 200, _JSON, encode_json({"objects": service.objects_summary()}), {}


async def _handle_healthz(service, body: bytes):
    return (
        200,
        _JSON,
        encode_json({"status": "ok", "objects": len(service.fleet)}),
        {},
    )


async def _handle_metrics(service, body: bytes):
    text = service.metrics.render_text()
    return 200, "text/plain; version=0.0.4", text.encode("utf-8"), {}


async def _handle_metrics_json(service, body: bytes):
    return 200, _JSON, encode_json(service.metrics.dump()), {}


_ROUTES = {
    ("POST", "/predict"): _handle_predict,
    ("POST", "/ingest"): _handle_ingest,
    ("POST", "/predict_all"): _handle_predict_all,
    ("GET", "/objects"): _handle_objects,
    ("GET", "/healthz"): _handle_healthz,
    ("GET", "/metrics"): _handle_metrics,
    ("GET", "/metrics.json"): _handle_metrics_json,
}


async def route(
    service, method: str, path: str, body: bytes
) -> tuple[int, str, bytes, dict[str, str]]:
    """Dispatch one request; always returns a renderable response."""
    path = path.split("?", 1)[0]
    handler = _ROUTES.get((method, path))
    if handler is None:
        known_paths = {p for _, p in _ROUTES}
        if path in known_paths:
            return 405, _JSON, encode_json({"error": "method not allowed"}), {}
        return 404, _JSON, encode_json({"error": f"no route {path}"}), {}
    try:
        return await handler(service, body)
    except ApiError as exc:
        extra = {}
        if exc.retry_after is not None:
            extra["Retry-After"] = (
                str(int(exc.retry_after))
                if float(exc.retry_after).is_integer()
                else f"{exc.retry_after:.3f}"
            )
        return exc.status, _JSON, encode_json({"error": exc.message}), extra
    except KeyError as exc:
        # Unknown object ids surface as KeyError from the fleet.
        return 404, _JSON, encode_json({"error": str(exc.args[0])}), {}
    except ValueError as exc:
        return 400, _JSON, encode_json({"error": str(exc)}), {}
