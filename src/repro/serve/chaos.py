"""Deterministic fault injection for serve-path resilience drills.

Robustness claims need a repeatable adversary.  :class:`FaultInjector`
draws every fault from one seeded RNG, so a fault plan — "10% of
requests gain 25ms latency, 5% of handlers raise, 2% of connections
drop" — replays identically across runs, machines, and Python versions.
The same plan object drives both sides of the wire:

* **Server side** (:class:`~repro.serve.server.PredictionServer` when
  ``ServeConfig.chaos`` is set): injected pre-handler latency, synthetic
  handler exceptions (exercising the 500 path), and abrupt connection
  drops before the response is written.
* **Client side** (:func:`~repro.serve.loadgen.run_loadgen` with
  ``chaos=``): slow clients that dribble the request onto the socket
  (exercising the idle-read reaper) and mid-stream disconnects.

Faults are sampled *per event* in call order, so determinism holds as
long as the request sequence is deterministic (single connection or a
committed workload).  With ``ChaosConfig()`` defaults every probability
is 0 and the injector is inert — the production configuration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["ChaosConfig", "FaultInjector"]


@dataclass(frozen=True)
class ChaosConfig:
    """One committed fault plan (all probabilities in [0, 1])."""

    seed: int = 0
    #: fraction of requests delayed before their handler runs
    latency_probability: float = 0.0
    #: injected delay in milliseconds when latency fires
    latency_ms: float = 25.0
    #: fraction of requests whose handler raises ``ChaosError``
    error_probability: float = 0.0
    #: fraction of requests whose connection is dropped pre-response
    drop_probability: float = 0.0
    #: fraction of client requests sent slowly (loadgen side)
    slow_client_probability: float = 0.0
    #: per-chunk delay in milliseconds for a slow client send
    slow_client_ms: float = 20.0

    def __post_init__(self) -> None:
        for name in (
            "latency_probability",
            "error_probability",
            "drop_probability",
            "slow_client_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.latency_ms < 0 or self.slow_client_ms < 0:
            raise ValueError("injected delays must be >= 0 ms")

    @property
    def active(self) -> bool:
        """Whether any fault can ever fire under this plan."""
        return any(
            p > 0.0
            for p in (
                self.latency_probability,
                self.error_probability,
                self.drop_probability,
                self.slow_client_probability,
            )
        )


class ChaosError(RuntimeError):
    """The synthetic handler failure injected by the error fault."""


class FaultInjector:
    """Samples the fault plan; one instance per drill, seeded once."""

    #: exposed so tests/benches can assert on the injected error type
    ChaosError = ChaosError

    def __init__(self, config: ChaosConfig, metrics=None):
        self.config = config
        self.metrics = metrics
        self._rng = random.Random(config.seed)
        self.injected: dict[str, int] = {
            "latency": 0,
            "error": 0,
            "drop": 0,
            "slow_client": 0,
        }

    # ------------------------------------------------------------------
    # server-side faults
    # ------------------------------------------------------------------
    def latency_s(self) -> float:
        """Seconds of pre-handler delay to inject for this request (0 = none)."""
        if self._fires(self.config.latency_probability):
            self._record("latency")
            return self.config.latency_ms / 1000.0
        return 0.0

    def raise_for_error(self) -> None:
        """Raise :class:`ChaosError` when the handler-error fault fires."""
        if self._fires(self.config.error_probability):
            self._record("error")
            raise ChaosError("injected handler failure")

    def should_drop(self) -> bool:
        """Whether to cut this connection before writing the response."""
        if self._fires(self.config.drop_probability):
            self._record("drop")
            return True
        return False

    # ------------------------------------------------------------------
    # client-side faults (loadgen)
    # ------------------------------------------------------------------
    def slow_client_s(self) -> float:
        """Per-chunk delay in seconds for a slow request send (0 = none)."""
        if self._fires(self.config.slow_client_probability):
            self._record("slow_client")
            return self.config.slow_client_ms / 1000.0
        return 0.0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _fires(self, probability: float) -> bool:
        if probability <= 0.0:
            return False
        return self._rng.random() < probability

    def _record(self, kind: str) -> None:
        self.injected[kind] += 1
        if self.metrics is not None:
            self.metrics.counter(f"serve_chaos_injected_total_{kind}").inc()

    def stats(self) -> dict[str, int]:
        return dict(self.injected)

    def __repr__(self) -> str:
        return f"FaultInjector(seed={self.config.seed}, injected={self.injected})"
