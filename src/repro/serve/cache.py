"""LRU + TTL cache for served predictions.

Predictive queries repeat: a dashboard polls the same object at the same
horizon, many clients ask "where is bus 42 at 9:00" within the same few
seconds.  The model pass is deterministic given (recent window, query
time, k), so the service memoises answers keyed by exactly that — with
the window's coordinates quantised to a grid so GPS jitter far below the
model's region size (``eps``) does not defeat the cache.

Eviction is twofold: least-recently-used beyond ``max_entries``, and a
per-entry TTL so a cached answer can never outlive the freshness window
the operator configured.  ``invalidate`` drops every entry for an object
the moment new fixes arrive, keeping served answers consistent with the
tracker state.

Thread-safe; the clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable, Sequence

from ..trajectory.point import TimedPoint

__all__ = ["PredictionCache"]


class PredictionCache:
    """Bounded memoisation of predictive-query answers.

    Parameters
    ----------
    max_entries:
        LRU capacity; the oldest entry is evicted when exceeded.
    ttl:
        Seconds an entry stays valid (``None`` disables expiry).
    quantum:
        Grid size for quantising window coordinates in :meth:`make_key`.
        Jitter smaller than the quantum maps to the same key.
    clock:
        Monotonic time source (injectable for tests).
    metrics:
        Optional :class:`~repro.serve.metrics.MetricsRegistry`; hit/miss/
        eviction counters and a size gauge are maintained when given.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        ttl: float | None = 30.0,
        quantum: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        metrics=None,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.max_entries = max_entries
        self.ttl = ttl
        self.quantum = quantum
        self.clock = clock
        self.metrics = metrics
        self._entries: OrderedDict[tuple, tuple[float, Any]] = OrderedDict()
        self._by_object: dict[str, set[tuple]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    def make_key(
        self,
        object_id: str,
        recent: Sequence[TimedPoint],
        query_time: int,
        k: int | None,
    ) -> tuple:
        """Cache key: (object, quantised recent window, query time, k)."""
        q = self.quantum
        window = tuple(
            (p.t, round(p.x / q), round(p.y / q)) for p in recent
        )
        return (object_id, window, int(query_time), k)

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def get(self, key: tuple) -> Any | None:
        """Return the cached value for ``key``, or ``None`` on miss/expiry."""
        now = self.clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                stored_at, value = entry
                if self.ttl is None or now - stored_at <= self.ttl:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    self._count("serve_cache_hits_total")
                    return value
                self._remove(key)
                self.expirations += 1
                self._count("serve_cache_expirations_total")
            self.misses += 1
            self._count("serve_cache_misses_total")
            return None

    def lookup(self, key: tuple) -> tuple[Any | None, bool]:
        """Like :meth:`get`, but a TTL-expired entry is *returned* as
        ``(value, False)`` instead of being dropped.

        This is the serve path's stale-while-refit read: a fresh entry
        answers immediately (``(value, True)``, counted as a hit); an
        expired one counts as a miss but its value rides along so the
        graceful-degradation ladder can serve it if the recomputation
        blows its deadline.  The expired entry stays stored (bounded by
        the LRU capacity) until the recomputation's ``put`` replaces it
        or :meth:`invalidate` drops it — invalidated entries are gone
        for stale reads too, because their window has moved.
        """
        now = self.clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                stored_at, value = entry
                if self.ttl is None or now - stored_at <= self.ttl:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    self._count("serve_cache_hits_total")
                    return value, True
                self.expirations += 1
                self._count("serve_cache_expirations_total")
                self.misses += 1
                self._count("serve_cache_misses_total")
                return value, False
            self.misses += 1
            self._count("serve_cache_misses_total")
            return None, False

    def put(self, key: tuple, value: Any) -> None:
        """Store ``value``; evicts the LRU entry beyond capacity."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (self.clock(), value)
            self._by_object.setdefault(key[0], set()).add(key)
            while len(self._entries) > self.max_entries:
                victim, _ = self._entries.popitem(last=False)
                self._forget_object_key(victim)
                self.evictions += 1
                self._count("serve_cache_evictions_total")
            self._gauge_size()

    def invalidate(self, object_id: str) -> int:
        """Drop every entry for ``object_id``; returns how many."""
        with self._lock:
            keys = self._by_object.pop(object_id, set())
            for key in keys:
                self._entries.pop(key, None)
            self.invalidations += len(keys)
            if keys:
                self._count("serve_cache_invalidations_total", len(keys))
            self._gauge_size()
            return len(keys)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._by_object.clear()
            self._gauge_size()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
        }

    # ------------------------------------------------------------------
    # internals (call with the lock held)
    # ------------------------------------------------------------------
    def _remove(self, key: tuple) -> None:
        self._entries.pop(key, None)
        self._forget_object_key(key)

    def _forget_object_key(self, key: tuple) -> None:
        keys = self._by_object.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_object[key[0]]

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _gauge_size(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("serve_cache_entries").set(len(self._entries))

    def __repr__(self) -> str:
        return (
            f"PredictionCache(size={len(self._entries)}/{self.max_entries}, "
            f"hit_rate={self.hit_rate:.2f})"
        )
