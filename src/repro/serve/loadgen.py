"""Load generator: replay a trajectory workload against a live server.

Closes the serving loop: ``repro mine`` fits a model, ``repro serve``
exposes it, and ``repro loadgen`` (or :func:`run_loadgen` in-process)
fires a realistic query stream at it and reports what an operator cares
about — sustained requests/sec and the latency tail.

The workload is drawn from a trajectory (the same CSV the model was
mined from, or a freshly synthesised scenario): each query takes a
``window``-long slice of consecutive fixes as the recent movements and
asks for the location 1..``max_horizon`` steps past the slice.  Queries
are sampled *with replacement* from a bounded pool of distinct slices —
exactly how production traffic repeats itself — so the server's cache
has something to hit; ``distinct=requests`` makes every query unique
(cache-defeating worst case for A/B runs).

Latencies are recorded raw and summarised exactly (no histogram error),
which also cross-checks the server's bucket-estimated p95 at
``/metrics``.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field

import numpy as np

from ..trajectory.trajectory import Trajectory

__all__ = [
    "PredictQuery",
    "LoadReport",
    "HttpClient",
    "build_workload",
    "run_loadgen",
    "ingest_stream",
]


@dataclass(frozen=True)
class PredictQuery:
    """One ``POST /predict`` call: a recent window and a future time.

    ``deadline_ms`` rides along in the payload (the server degrades
    rather than blocking past it) and defines this query's goodput bar:
    a response counts as *good* only if it arrives in time.
    """

    object_id: str
    recent: tuple[tuple[int, float, float], ...]
    query_time: int
    k: int | None = None
    deadline_ms: float | None = None

    def payload(self) -> dict:
        body: dict = {
            "object_id": self.object_id,
            "recent": [list(fix) for fix in self.recent],
            "query_time": self.query_time,
        }
        if self.k is not None:
            body["k"] = self.k
        if self.deadline_ms is not None:
            body["deadline_ms"] = self.deadline_ms
        return body


@dataclass
class LoadReport:
    """Throughput/latency summary of one load-generation run.

    Beyond the headline numbers, a resilience run is self-describing:
    ``status_counts`` is the full status-code histogram (503 = shed,
    429 = rate-limited), ``degraded`` counts fallback-quality answers,
    ``transport_errors`` counts dropped/failed connections, and
    ``class_latencies_ms`` splits latencies per request class so a
    predict/ingest mix can be read apart.
    """

    requests: int
    errors: int
    elapsed: float
    cache_hits: int
    latencies_ms: list[float] = field(repr=False)
    status_counts: dict[int, int] = field(default_factory=dict)
    class_latencies_ms: dict[str, list[float]] = field(
        default_factory=dict, repr=False
    )
    degraded: int = 0
    transport_errors: int = 0
    deadline_misses: int = 0
    good: int = 0
    #: latencies keyed by the responding shard (``X-Shard`` header);
    #: empty against a single-process server, which sends no such header
    shard_latencies_ms: dict[str, list[float]] = field(
        default_factory=dict, repr=False
    )
    #: status-code histogram per responding shard
    shard_status_counts: dict[str, dict[int, int]] = field(
        default_factory=dict
    )

    @property
    def throughput(self) -> float:
        """Successful requests per second."""
        ok = self.requests - self.errors
        return ok / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def shed(self) -> int:
        """Responses shed by admission control (HTTP 503)."""
        return self.status_counts.get(503, 0)

    @property
    def rate_limited(self) -> int:
        """Responses refused by the per-client rate limiter (HTTP 429)."""
        return self.status_counts.get(429, 0)

    @property
    def goodput_ratio(self) -> float:
        """Fraction of requests answered full-quality and in deadline."""
        return self.good / self.requests if self.requests else 0.0

    def percentile(self, p: float, request_class: str | None = None) -> float:
        samples = (
            self.latencies_ms
            if request_class is None
            else self.class_latencies_ms.get(request_class, [])
        )
        if not samples:
            return 0.0
        return float(np.percentile(np.asarray(samples), p))

    def format(self) -> str:
        lines = [
            f"{self.requests} requests in {self.elapsed:.2f}s "
            f"({self.throughput:.0f} req/s), {self.errors} errors, "
            f"{self.cache_hits} cache hits",
            f"latency ms: p50={self.percentile(50):.2f} "
            f"p95={self.percentile(95):.2f} p99={self.percentile(99):.2f} "
            f"max={max(self.latencies_ms, default=0.0):.2f}",
        ]
        if self.status_counts:
            histogram = " ".join(
                f"{status}:{count}"
                for status, count in sorted(self.status_counts.items())
            )
            lines.append(f"status codes: {histogram}")
        if (
            self.shed
            or self.rate_limited
            or self.degraded
            or self.transport_errors
            or self.deadline_misses
        ):
            lines.append(
                f"resilience: shed={self.shed} rate_limited={self.rate_limited} "
                f"degraded={self.degraded} transport_errors="
                f"{self.transport_errors} deadline_misses="
                f"{self.deadline_misses} goodput={self.goodput_ratio:.1%}"
            )
        for request_class in sorted(self.class_latencies_ms):
            if len(self.class_latencies_ms) > 1:
                lines.append(
                    f"{request_class} ms: "
                    f"p50={self.percentile(50, request_class):.2f} "
                    f"p95={self.percentile(95, request_class):.2f} "
                    f"p99={self.percentile(99, request_class):.2f}"
                )
        for shard in sorted(self.shard_latencies_ms):
            samples = np.asarray(self.shard_latencies_ms[shard])
            statuses = " ".join(
                f"{status}:{count}"
                for status, count in sorted(
                    self.shard_status_counts.get(shard, {}).items()
                )
            )
            lines.append(
                f"shard {shard}: {len(samples)} responses, "
                f"p50={float(np.percentile(samples, 50)):.2f} "
                f"p95={float(np.percentile(samples, 95)):.2f} "
                f"p99={float(np.percentile(samples, 99)):.2f} ms"
                + (f" [{statuses}]" if statuses else "")
            )
        return "\n".join(lines)


class HttpClient:
    """Minimal keep-alive HTTP/1.1 client over one asyncio connection."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:
                pass
            self._reader = self._writer = None

    async def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict[str, str] | None = None,
        send_delay_s: float = 0.0,
    ) -> tuple[int, dict[str, str], bytes]:
        """Send one JSON request; returns ``(status, headers, body)``.

        ``headers`` adds extra request headers (e.g. ``X-Client-Id``).
        ``send_delay_s > 0`` makes this a *slow client*: the head and the
        body go out as separate writes with that delay in between, which
        is what the server's idle-read reaper has to tolerate (fast
        enough senders) or kill (actual slow-loris).
        """
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        return await self.request_raw(
            method, path, body, headers=headers, send_delay_s=send_delay_s
        )

    async def request_raw(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: dict[str, str] | None = None,
        send_delay_s: float = 0.0,
    ) -> tuple[int, dict[str, str], bytes]:
        """Send pre-encoded body bytes verbatim.

        The shard router forwards requests through this method so the
        bytes a worker sees — and therefore the bytes it answers with —
        are exactly the bytes the client sent.
        """
        if self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        extra = ""
        for name, value in (headers or {}).items():
            extra += f"{name}: {value}\r\n"
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        if send_delay_s > 0 and body:
            self._writer.write(head)
            await self._writer.drain()
            await asyncio.sleep(send_delay_s)
            self._writer.write(body)
        else:
            self._writer.write(head + body)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        headers: dict[str, str] = {}
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        response_body = (
            await self._reader.readexactly(length) if length else b""
        )
        return status, headers, response_body


def build_workload(
    trajectory: Trajectory,
    *,
    object_id: str = "default",
    requests: int = 500,
    window: int = 4,
    max_horizon: int = 5,
    distinct: int = 50,
    k: int | None = None,
    deadline_ms: float | None = None,
    rng: np.random.Generator | None = None,
) -> list[PredictQuery]:
    """Sample a predict workload from a trajectory (see module docstring)."""
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if len(trajectory) < window:
        raise ValueError(
            f"trajectory of {len(trajectory)} fixes is shorter than the "
            f"window ({window})"
        )
    if rng is None:
        rng = np.random.default_rng(0)
    distinct = max(1, min(distinct, requests))

    pool: list[PredictQuery] = []
    positions = trajectory.positions
    start_time = trajectory.start_time
    for _ in range(distinct):
        end = int(rng.integers(window - 1, len(trajectory)))
        recent = tuple(
            (start_time + i, float(positions[i, 0]), float(positions[i, 1]))
            for i in range(end - window + 1, end + 1)
        )
        horizon = int(rng.integers(1, max_horizon + 1))
        pool.append(
            PredictQuery(
                object_id=object_id,
                recent=recent,
                query_time=start_time + end + horizon,
                k=k,
                deadline_ms=deadline_ms,
            )
        )
    choices = rng.integers(0, len(pool), size=requests)
    return [pool[i] for i in choices]


async def run_loadgen(
    host: str,
    port: int,
    workload: list[PredictQuery],
    concurrency: int = 8,
    chaos=None,
    client_id: str | None = "loadgen",
) -> LoadReport:
    """Fire ``workload`` at the server from ``concurrency`` connections.

    Each connection identifies itself with an ``X-Client-Id`` header
    (``{client_id}-{worker}``; ``client_id=None`` omits it) so per-client
    rate limits see stable identities.  ``chaos`` plugs in a
    :class:`~repro.serve.chaos.FaultInjector` on the *client* side:
    slow sends (dribbled request bytes) and abrupt disconnects between
    requests, exercising the server's read timeouts and half-open
    connection handling.  A query is *good* when it came back 200,
    full-quality (not ``degraded``), and — if it carried a deadline —
    within that deadline.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    queue: asyncio.Queue[PredictQuery] = asyncio.Queue()
    for query in workload:
        queue.put_nowait(query)

    latencies_ms: list[float] = []
    predict_latencies: list[float] = []
    status_counts: dict[int, int] = {}
    shard_latencies: dict[str, list[float]] = {}
    shard_statuses: dict[str, dict[int, int]] = {}
    counters = {
        "errors": 0,
        "cache_hits": 0,
        "degraded": 0,
        "transport_errors": 0,
        "deadline_misses": 0,
        "good": 0,
    }

    async def worker(index: int) -> None:
        client = HttpClient(host, port)
        await client.connect()
        request_headers = (
            {"X-Client-Id": f"{client_id}-{index}"}
            if client_id is not None
            else None
        )
        try:
            while True:
                try:
                    query = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                send_delay_s = 0.0
                if chaos is not None:
                    if chaos.should_drop():
                        # Abrupt client disconnect: the server must reap
                        # the half-open connection without fuss.
                        await client.close()
                    send_delay_s = chaos.slow_client_s()
                started = time.perf_counter()
                try:
                    status, headers, body = await client.request(
                        "POST",
                        "/predict",
                        query.payload(),
                        headers=request_headers,
                        send_delay_s=send_delay_s,
                    )
                except (ConnectionError, OSError, asyncio.IncompleteReadError):
                    counters["errors"] += 1
                    counters["transport_errors"] += 1
                    await client.close()
                    await client.connect()
                    continue
                latency_ms = (time.perf_counter() - started) * 1000.0
                latencies_ms.append(latency_ms)
                predict_latencies.append(latency_ms)
                status_counts[status] = status_counts.get(status, 0) + 1
                shard = headers.get("x-shard")
                if shard is not None:
                    shard_latencies.setdefault(shard, []).append(latency_ms)
                    per_shard = shard_statuses.setdefault(shard, {})
                    per_shard[status] = per_shard.get(status, 0) + 1
                degraded = headers.get("x-degraded") == "true"
                in_deadline = (
                    query.deadline_ms is None or latency_ms <= query.deadline_ms
                )
                if not in_deadline:
                    counters["deadline_misses"] += 1
                if status != 200:
                    counters["errors"] += 1
                else:
                    if degraded:
                        counters["degraded"] += 1
                    elif in_deadline:
                        counters["good"] += 1
                    if headers.get("x-cache") == "hit":
                        counters["cache_hits"] += 1
        finally:
            await client.close()

    started = time.perf_counter()
    await asyncio.gather(
        *(
            worker(i)
            for i in range(min(concurrency, len(workload) or 1))
        )
    )
    elapsed = time.perf_counter() - started
    return LoadReport(
        requests=len(workload),
        errors=counters["errors"],
        elapsed=elapsed,
        cache_hits=counters["cache_hits"],
        latencies_ms=latencies_ms,
        status_counts=status_counts,
        class_latencies_ms={"predict": predict_latencies},
        degraded=counters["degraded"],
        transport_errors=counters["transport_errors"],
        deadline_misses=counters["deadline_misses"],
        good=counters["good"],
        shard_latencies_ms=shard_latencies,
        shard_status_counts=shard_statuses,
    )


async def ingest_stream(
    host: str,
    port: int,
    object_id: str,
    fixes: list[tuple[int, float, float]],
    chunk: int = 32,
) -> int:
    """POST a fix stream to ``/ingest`` in chunks; returns fixes accepted."""
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    client = HttpClient(host, port)
    await client.connect()
    accepted = 0
    try:
        for i in range(0, len(fixes), chunk):
            batch = [list(fix) for fix in fixes[i : i + chunk]]
            status, _, body = await client.request(
                "POST",
                "/ingest",
                {"object_id": object_id, "fixes": batch},
            )
            if status != 200:
                raise RuntimeError(
                    f"/ingest returned {status}: {body.decode('utf-8', 'replace')}"
                )
            accepted += json.loads(body)["accepted"]
    finally:
        await client.close()
    return accepted
