"""repro.serve — the asyncio prediction service.

Turns the offline reproduction into a queryable system: a stdlib-only
JSON-over-HTTP server (:mod:`~repro.serve.server`) over one or more
fitted models, with per-object streaming ingest, request batching
(:mod:`~repro.serve.batching`), an LRU+TTL prediction cache
(:mod:`~repro.serve.cache`), operational metrics
(:mod:`~repro.serve.metrics`), and a load generator
(:mod:`~repro.serve.loadgen`).

Run one from the CLI::

    repro mine route.csv -o model.npz --period 24
    repro serve model.npz --port 8080
    repro loadgen 127.0.0.1:8080 --input route.csv --requests 500
"""

from .batching import RequestBatcher
from .cache import PredictionCache
from .handlers import ApiError, prediction_to_dict, render_predict_body
from .loadgen import (
    HttpClient,
    LoadReport,
    PredictQuery,
    build_workload,
    ingest_stream,
    run_loadgen,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .server import PredictionServer, PredictionService, ServeConfig

__all__ = [
    "ApiError",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "HttpClient",
    "LoadReport",
    "MetricsRegistry",
    "PredictQuery",
    "PredictionCache",
    "PredictionServer",
    "PredictionService",
    "RequestBatcher",
    "ServeConfig",
    "build_workload",
    "ingest_stream",
    "prediction_to_dict",
    "render_predict_body",
    "run_loadgen",
]
