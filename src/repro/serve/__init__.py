"""repro.serve — the asyncio prediction service.

Turns the offline reproduction into a queryable system: a stdlib-only
JSON-over-HTTP server (:mod:`~repro.serve.server`) over one or more
fitted models, with per-object streaming ingest, request batching
(:mod:`~repro.serve.batching`), an LRU+TTL prediction cache
(:mod:`~repro.serve.cache`), operational metrics
(:mod:`~repro.serve.metrics`), and a load generator
(:mod:`~repro.serve.loadgen`).

The stack is hardened for hostile traffic: admission control with
per-class slots, watermark shedding and per-client rate limits
(:mod:`~repro.serve.admission`), per-request deadlines with a graceful
degradation ladder (stale cache -> motion-only -> 503), a background
refit scheduler with retry/backoff/dead-lettering
(:mod:`~repro.serve.refit`), HTTP read limits, and seeded fault
injection for resilience drills (:mod:`~repro.serve.chaos`).  With
chaos off and default limits the hardening layer is invisible:
responses are byte-identical to a plain predict call.

Beyond one process, :mod:`~repro.serve.shard` partitions a fleet over
N shard-worker processes behind a consistent-hash router
(``repro shard-serve --shards N``), preserving the same wire protocol
and the same byte-identity guarantee.

Run one from the CLI::

    repro mine route.csv -o model.npz --period 24
    repro serve model.npz --port 8080
    repro loadgen 127.0.0.1:8080 --input route.csv --requests 500
"""

from .admission import AdmissionController, AdmissionDecision, TokenBucket
from .batching import RequestBatcher
from .cache import PredictionCache
from .chaos import ChaosConfig, FaultInjector
from .handlers import (
    ApiError,
    prediction_to_dict,
    render_predict_all_body,
    render_predict_body,
)
from .loadgen import (
    HttpClient,
    LoadReport,
    PredictQuery,
    build_workload,
    ingest_stream,
    run_loadgen,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_dumps,
)
from .refit import RefitScheduler
from .server import PredictionServer, PredictionService, ServeConfig

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ApiError",
    "ChaosConfig",
    "Counter",
    "FaultInjector",
    "RefitScheduler",
    "TokenBucket",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "HttpClient",
    "LoadReport",
    "MetricsRegistry",
    "PredictQuery",
    "PredictionCache",
    "PredictionServer",
    "PredictionService",
    "RequestBatcher",
    "ServeConfig",
    "build_workload",
    "ingest_stream",
    "merge_dumps",
    "prediction_to_dict",
    "render_predict_all_body",
    "render_predict_body",
    "run_loadgen",
]
