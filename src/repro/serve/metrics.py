"""Operational metrics: counters, gauges, fixed-bucket histograms.

The serving layer needs cheap, dependency-free telemetry — request
counts, cache hit rates, and latency distributions — exposed both as a
Python snapshot (for tests and the load generator) and as a
Prometheus-style text exposition at ``GET /metrics``.

Everything here is stdlib-only and thread-safe: instruments take a lock
per observation, so they can be shared between the asyncio event loop
and executor threads running model passes.  Core model code accepts any
object with this registry's ``counter``/``histogram`` methods (duck
typed), so :mod:`repro.core` never imports this module.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_dumps",
    "DEFAULT_LATENCY_BUCKETS",
    "FIT_PHASE_BUCKETS",
    "FIT_PHASES",
]

#: Upper bounds (seconds) for latency histograms: 100µs .. 10s, roughly
#: logarithmic, fine enough that p99 interpolation is meaningful for
#: sub-millisecond model passes and whole-request round-trips alike.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    10.0,
)

#: The training pipeline's phase names, in execution order: frequent-region
#: discovery (``cluster``), pattern mining (``mine``) and key-table/TPT
#: construction (``index``).  Each lands in a ``fit_phase_seconds_{phase}``
#: histogram when a registry is bound during fit or snapshot warm-up.
FIT_PHASES: tuple[str, ...] = ("cluster", "mine", "index")

#: Upper bounds (seconds) for the fit-phase histograms.  Fitting is
#: seconds-to-minutes work, not microseconds, so the request-latency
#: buckets would lump every sample into the top bucket; these run 1ms
#: (trivial toy fits) up to 120s (large per-object histories).
FIT_PHASE_BUCKETS: tuple[float, ...] = (
    0.001,
    0.01,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    120.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A value that can go up and down (e.g. tracked objects, cache size)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self._value})"


class Histogram:
    """Fixed-bucket histogram with quantile estimates.

    Observations land in the first bucket whose upper bound is >= the
    value; an implicit +inf bucket catches the rest.  Quantiles are
    estimated by linear interpolation inside the winning bucket (the
    Prometheus ``histogram_quantile`` rule), which is exact enough for
    p50/p95/p99 dashboards without storing raw samples.
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.name = name
        self.help = help
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for the +inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def raw_counts(self) -> list[int]:
        """Non-cumulative per-bucket counts, the +inf bucket last."""
        with self._lock:
            return list(self._counts)

    def merge_counts(
        self, counts: Sequence[int], total: float, count: int
    ) -> None:
        """Fold another histogram's raw state into this one.

        Used when aggregating shard registries: the other histogram must
        share this one's bucket bounds (``counts`` has one entry per
        bound plus the +inf bucket).
        """
        if len(counts) != len(self._counts):
            raise ValueError(
                f"histogram {self.name!r}: cannot merge {len(counts)} bucket "
                f"counts into {len(self._counts)} buckets"
            )
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += int(c)
            self._sum += float(total)
            self._count += int(count)

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, +inf last."""
        with self._lock:
            counts = list(self._counts)
        cumulative = []
        running = 0
        for bound, count in zip((*self.buckets, float("inf")), counts):
            running += count
            cumulative.append((bound, running))
        return cumulative

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        target = q * self._count
        cumulative = self.bucket_counts()
        previous_bound = 0.0
        previous_running = 0
        for bound, running in cumulative:
            if running >= target:
                if bound == float("inf"):
                    # No upper bound to interpolate against; report the
                    # largest finite bound as the floor estimate.
                    return self.buckets[-1]
                in_bucket = running - previous_running
                if in_bucket == 0:
                    return bound
                fraction = (target - previous_running) / in_bucket
                return previous_bound + fraction * (bound - previous_bound)
            previous_bound = bound
            previous_running = running
        return self.buckets[-1]

    def percentiles(self) -> dict[str, float]:
        """The dashboard trio: p50, p95, p99."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, count={self._count})"


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    ``registry.counter("x")`` always returns the same instrument, so hot
    paths may look instruments up by name without holding references.
    Asking for an existing name with a different instrument type raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, **kwargs):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, **kwargs)
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {cls.__name__}"
                )
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help=help, buckets=buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def snapshot(self) -> dict[str, dict]:
        """All instruments as plain dicts (for tests and JSON endpoints)."""
        out: dict[str, dict] = {}
        for name, instrument in sorted(self._instruments.items()):
            if isinstance(instrument, Counter):
                out[name] = {"type": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                out[name] = {"type": "gauge", "value": instrument.value}
            else:
                out[name] = {
                    "type": "histogram",
                    "count": instrument.count,
                    "sum": instrument.total,
                    **instrument.percentiles(),
                }
        return out

    def dump(self) -> dict[str, dict]:
        """Full mergeable state, JSON-safe (served at ``GET /metrics.json``).

        Unlike :meth:`snapshot` this keeps histogram bucket bounds and
        raw per-bucket counts, so a set of dumps from different
        processes can be folded into one registry with
        :func:`merge_dumps` without losing quantile accuracy.
        """
        out: dict[str, dict] = {}
        for name, instrument in sorted(self._instruments.items()):
            if isinstance(instrument, Counter):
                out[name] = {
                    "type": "counter",
                    "help": instrument.help,
                    "value": instrument.value,
                }
            elif isinstance(instrument, Gauge):
                out[name] = {
                    "type": "gauge",
                    "help": instrument.help,
                    "value": instrument.value,
                }
            else:
                out[name] = {
                    "type": "histogram",
                    "help": instrument.help,
                    "buckets": list(instrument.buckets),
                    "counts": instrument.raw_counts(),
                    "sum": instrument.total,
                    "count": instrument.count,
                }
        return out

    def merge_dump(self, dump: dict[str, dict]) -> None:
        """Fold one :meth:`dump` into this registry.

        Counters and gauges add (a fleet-wide gauge like
        ``serve_objects`` is the sum of the shards' values); histograms
        add bucket-by-bucket and must share bounds.
        """
        for name, entry in dump.items():
            kind = entry.get("type")
            if kind == "counter":
                self.counter(name, help=entry.get("help", "")).inc(
                    float(entry["value"])
                )
            elif kind == "gauge":
                self.gauge(name, help=entry.get("help", "")).inc(
                    float(entry["value"])
                )
            elif kind == "histogram":
                histogram = self.histogram(
                    name,
                    help=entry.get("help", ""),
                    buckets=tuple(entry["buckets"]),
                )
                if list(histogram.buckets) != [
                    float(b) for b in entry["buckets"]
                ]:
                    raise ValueError(
                        f"histogram {name!r}: shard bucket bounds differ "
                        "from the aggregate's"
                    )
                histogram.merge_counts(
                    entry["counts"], entry["sum"], entry["count"]
                )
            else:
                raise ValueError(
                    f"metric {name!r}: unknown instrument type {kind!r}"
                )

    def render_text(self) -> str:
        """Prometheus-style text exposition (served at ``GET /metrics``)."""
        lines: list[str] = []
        for name, instrument in sorted(self._instruments.items()):
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {_fmt(instrument.value)}")
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_fmt(instrument.value)}")
            else:
                lines.append(f"# TYPE {name} histogram")
                for bound, running in instrument.bucket_counts():
                    label = "+Inf" if bound == float("inf") else _fmt(bound)
                    lines.append(f'{name}_bucket{{le="{label}"}} {running}')
                lines.append(f"{name}_sum {_fmt(instrument.total)}")
                lines.append(f"{name}_count {instrument.count}")
                for key, value in instrument.percentiles().items():
                    lines.append(
                        f'{name}_quantile{{q="{key}"}} {_fmt(value)}'
                    )
        return "\n".join(lines) + "\n"


def merge_dumps(dumps: Sequence[dict]) -> MetricsRegistry:
    """Aggregate registry dumps from several processes into one registry.

    The router's merged ``/metrics`` view is built this way: its own
    registry's dump plus one fetched from each shard worker.  Counters
    and gauges sum; histograms sum per bucket (identical bounds
    required, which holds for homogeneous workers).
    """
    merged = MetricsRegistry()
    for dump in dumps:
        merged.merge_dump(dump)
    return merged


def _fmt(value: float) -> str:
    """Render a float without a trailing ``.0`` for whole numbers."""
    return str(int(value)) if float(value).is_integer() else repr(value)
