from setuptools import setup; setup()
# Kept alongside pyproject.toml so `python setup.py develop` works in
# offline environments where pip's PEP-517 editable path needs a `wheel`
# it cannot download.
